//! The multi-threaded, token-level executor — sharded scheduler.
//!
//! ## Execution model
//!
//! The executor runs `iterations` complete graph iterations (repetition
//! counts come from `tpdf_core::consistency`), firing any node whose
//! *mode-selected* inputs are ready — the untimed `tpdf-sim` engine's
//! semantics, but on real worker threads moving real [`Token`] values.
//!
//! ## Sharded scheduling
//!
//! There is no global scheduler lock on the claim/complete path. The
//! state is sharded three ways:
//!
//! * **Per-channel lock-free SPSC rings.** Every channel (data *and*
//!   control) is a [`RingBuffer`] with atomic cursors. A TPDF channel
//!   has one producer node and one consumer node, and a node runs at
//!   most one firing at a time, so single-producer single-consumer is
//!   exactly the required discipline.
//! * **Per-node atomic claim state.** A worker acquires a node with one
//!   compare-and-swap on its `claimed` flag. While the claim is held
//!   the worker is the unique consumer of the node's input rings and
//!   the unique producer of its output rings, so availability and free
//!   space can be checked and committed without locks or rollback:
//!   input tokens only accumulate and output space only grows until
//!   the claim holder itself moves them.
//! * **Per-worker ready queues with stealing.** Completing a firing
//!   enqueues the affected neighbours (the node itself, the consumers
//!   of its outputs, the producers of its inputs) onto the worker's own
//!   queue; idle workers steal from the back of other queues and fall
//!   back to a full scan before parking.
//!
//! The only lock left is the park/teardown mutex, which is touched when
//! a worker runs out of work, when a real-time deadline decision is
//! recorded, and at the **iteration barrier**: when the last firing of
//! an iteration completes, the completing worker — alone, every firing
//! budget being exhausted — flushes the channels whose consuming
//! (controlled) port was rejected for the whole iteration (the paper's
//! "unused edges are removed"), advances the iteration and republishes
//! the per-node budgets. Control tokens therefore still switch modes at
//! exact iteration boundaries.
//!
//! ## Determinism
//!
//! Each node is sequential with itself (the claim flag), every channel
//! has a single producer and a single consumer, and a node's firing
//! ordinal determines which tokens it consumes and produces — a
//! Kahn-style determinacy argument, unchanged by work stealing: the
//! *schedule* varies with the thread count, the *token streams* do not
//! (for deterministic [`ControlPolicy`]s). Cross-validation against the
//! single-threaded engine stays exact.
//!
//! ## Clocks
//!
//! [`KernelKind::Clock`] watchdogs either fire as ordinary control
//! actors ([`ClockMode::Virtual`], used for cross-validation) or at
//! real wall-clock deadlines ([`ClockMode::RealTime`], in which a
//! clock-driven Transaction in [`Mode::HighestPriority`] takes the
//! best result available *now* — and fires empty, counting a deadline
//! miss, when nothing is ready).

use crate::arena::{ArenaStats, SlabArena};
use crate::checkpoint::{ChannelCheckpoint, ChannelContents, Checkpoint, CheckpointError};
use crate::kernel::{
    fire_default, fire_select_duplicate, fire_transaction, FiringContext, KernelRegistry,
    PortInput, PortOutput,
};
use crate::metrics::{DeadlineSelection, Metrics};
use crate::ring::RingBuffer;
use crate::token::Token;
use crate::RuntimeError;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tpdf_core::actors::KernelKind;
use tpdf_core::control::{ModeSelector, ValueTrace};
use tpdf_core::graph::{ChannelId, NodeId, TpdfGraph};
use tpdf_core::mode::Mode;
use tpdf_manycore::{map_graph, node_workloads, Mapping, MappingStrategy, Platform};
use tpdf_sim::engine::{ControlPolicy, SimulationConfig, Simulator};
use tpdf_symexpr::Binding;
use tpdf_trace::{EventKind, TraceEvent, Tracer};

use crate::metrics::RebindEvent;

/// How firings are placed onto worker threads.
///
/// Placement is a *performance* policy, never a semantic one: by the
/// Kahn-style determinacy argument (each node is sequential with
/// itself, each channel is SPSC, a firing's ordinal fixes its rates and
/// mode), token streams and mode sequences are identical under every
/// placement — which `tests/runtime_vs_sim_prop.rs` asserts rather
/// than assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Any worker fires any ready node; completions enqueue hints onto
    /// the completing worker's queue and idle workers steal freely.
    #[default]
    WorkStealing,
    /// Drive the runtime from `tpdf-manycore`'s analysis-side mapping:
    /// each node is pinned to a *home worker* derived from
    /// [`tpdf_manycore::map_graph`] under the given strategy (one
    /// cluster per worker thread, workloads = repetition count ×
    /// execution time). Workers prefer their own ready queue and own
    /// nodes, and only cross the affinity boundary — stealing foreign
    /// hints or firing foreign nodes — after
    /// [`AFFINITY_STEAL_THRESHOLD`] consecutive empty hunts. Under a
    /// binding sequence each phase's [`Plan`] carries its own rebound
    /// mapping (repetition counts change with the binding, so the
    /// workloads and therefore the pinning do too), re-pinned at the
    /// iteration barrier along with the plan switch.
    Affinity(MappingStrategy),
}

impl PlacementPolicy {
    /// Whether this policy pins nodes to home workers.
    pub fn is_affinity(&self) -> bool {
        matches!(self, PlacementPolicy::Affinity(_))
    }
}

/// Consecutive empty work hunts after which an affinity-placed worker
/// is considered *starved* and allowed to cross the boundary: steal
/// hints from foreign queues and fire foreign-home nodes. Small on
/// purpose — affinity is a preference that must never cost liveness,
/// and a starved worker yields (not parks) below the threshold, so the
/// crossing decision is made within microseconds.
pub(crate) const AFFINITY_STEAL_THRESHOLD: u32 = 2;

/// How [`KernelKind::Clock`] watchdogs are driven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClockMode {
    /// Clocks fire as ordinary control actors, as fast as the dataflow
    /// allows. This matches the untimed `tpdf-sim` engine and is the
    /// mode cross-validation uses.
    Virtual,
    /// Clocks fire at real wall-clock deadlines: tick `k` of a clock
    /// with period `P` fires at `start + k · P · time_unit`.
    RealTime {
        /// Wall-clock duration of one virtual time unit (graph
        /// execution times and clock periods are expressed in it).
        time_unit: Duration,
    },
}

/// Configuration of a runtime execution.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Concrete values of the graph's integer parameters (the base
    /// binding of every iteration).
    pub binding: Binding,
    /// Mode sequence applied by control actors when no
    /// [`RuntimeConfig::mode_selector`] is set (same semantics as the
    /// `tpdf-sim` engine).
    pub control_policy: ControlPolicy,
    /// Data-dependent control: when set, every control actor computes
    /// the [`Mode`] it emits by calling this selector with its firing
    /// ordinal and the scalar views of the tokens it actually consumed
    /// ([`crate::token::Token::as_scalar`]); the
    /// [`RuntimeConfig::control_policy`] is ignored. A registered
    /// behaviour can override the selector per firing through
    /// [`crate::kernel::FiringContext::set_mode`].
    pub mode_selector: Option<Arc<dyn ModeSelector>>,
    /// Scalar values for the *reference sizing simulation* (the
    /// count-level run that derives ring capacities): with a
    /// data-dependent selector, the sizing run needs the same values
    /// the runtime kernels will produce. Ignored during token-level
    /// execution, which reads the real tokens.
    pub value_trace: Option<Arc<dyn ValueTrace>>,
    /// Per-iteration parameter rebinding: iteration `k` runs under the
    /// base binding overlaid with element `min(k, len - 1)` (the last
    /// element persists). At each affected iteration barrier the
    /// executor re-derives repetition counts and rates and grows ring
    /// capacities in place. Empty means every iteration uses the base
    /// binding.
    pub binding_sequence: Vec<Binding>,
    /// How firings are placed onto workers (see [`PlacementPolicy`]).
    pub placement: PlacementPolicy,
    /// Number of worker threads.
    pub threads: usize,
    /// Complete graph iterations to execute.
    pub iterations: u64,
    /// Clock driving mode.
    pub clock_mode: ClockMode,
    /// Data-ring capacity = reference high-water × this slack factor
    /// (≥ 1). Slack 1 is the tightest sizing the reference execution
    /// proves deadlock-free; larger values give producers headroom to
    /// run ahead. Control rings are sized by their per-iteration
    /// production, which bounds their occupancy exactly.
    pub capacity_slack: u64,
    /// Safety net: a worker finding nothing to do wakes up after this
    /// long to re-check for stalls.
    pub stall_timeout: Duration,
    /// Structured tracing sink (see [`tpdf_trace::Tracer`]). `None`
    /// costs a pointer null-check per instrumentation site; an
    /// installed-but-disabled tracer costs one `Relaxed` load plus a
    /// branch. Installed tracers also enrich stall errors with the
    /// flight-recorder tail.
    pub tracer: Option<Arc<Tracer>>,
    /// Job tag stamped on every trace event this execution emits
    /// (Chrome export groups tags into processes). 0 means *untagged*:
    /// a pool assigns a fresh tag per job, a service assigns one per
    /// session.
    pub trace_tag: u32,
}

impl RuntimeConfig {
    /// Creates a configuration: 4 threads, 1 iteration, virtual clocks,
    /// capacity slack 2.
    pub fn new(binding: Binding) -> Self {
        RuntimeConfig {
            binding,
            control_policy: ControlPolicy::default(),
            mode_selector: None,
            value_trace: None,
            binding_sequence: Vec::new(),
            placement: PlacementPolicy::WorkStealing,
            threads: 4,
            iterations: 1,
            clock_mode: ClockMode::Virtual,
            capacity_slack: 2,
            stall_timeout: Duration::from_millis(100),
            tracer: None,
            trace_tag: 0,
        }
    }

    /// Sets the control policy.
    pub fn with_policy(mut self, policy: ControlPolicy) -> Self {
        self.control_policy = policy;
        self
    }

    /// Makes every control actor compute its emitted mode from the data
    /// it consumes through `selector` (see
    /// [`tpdf_core::control::ModeSelector`]).
    pub fn with_mode_selector(mut self, selector: Arc<dyn ModeSelector>) -> Self {
        self.mode_selector = Some(selector);
        self
    }

    /// Supplies the scalar values the reference sizing simulation feeds
    /// a data-dependent selector (see [`RuntimeConfig::value_trace`]).
    pub fn with_value_trace(mut self, trace: Arc<dyn ValueTrace>) -> Self {
        self.value_trace = Some(trace);
        self
    }

    /// Rebinds parameters at iteration boundaries: iteration `k` runs
    /// under the base binding overlaid with `sequence[min(k, len - 1)]`.
    /// Repetition counts, rates and ring capacities are re-derived at
    /// each affected iteration barrier (rings grow in place, they never
    /// shrink).
    pub fn with_binding_sequence(mut self, sequence: Vec<Binding>) -> Self {
        self.binding_sequence = sequence;
        self
    }

    /// The effective binding of iteration `k`.
    pub fn binding_for(&self, iteration: u64) -> Binding {
        if self.binding_sequence.is_empty() {
            return self.binding.clone();
        }
        let idx = (iteration as usize).min(self.binding_sequence.len() - 1);
        let mut binding = self.binding.clone();
        binding.merge(&self.binding_sequence[idx]);
        binding
    }

    /// The [`SimulationConfig`] mirroring this configuration — what the
    /// executor's reference sizing run (and any differential test) must
    /// hand the count-level engine so it follows the exact same modes
    /// and bindings as the runtime. The single place the two configs
    /// are kept in sync.
    pub fn reference_sim_config(&self) -> SimulationConfig {
        let mut sim = SimulationConfig::new(self.binding.clone())
            .with_policy(self.control_policy.clone())
            .with_binding_sequence(self.binding_sequence.clone());
        if let Some(selector) = &self.mode_selector {
            sim = sim.with_mode_selector(Arc::clone(selector));
        }
        if let Some(trace) = &self.value_trace {
            sim = sim.with_value_trace(Arc::clone(trace));
        }
        sim
    }

    /// Whether every control actor provably emits the same mode at
    /// every firing. Only then is one reference iteration enough for
    /// ring sizing: firing ordinals never reset across iterations, so
    /// an `Alternate` policy — or any custom selector, whose behaviour
    /// cannot be introspected — can select differently in later
    /// iterations and needs the whole run simulated.
    fn constant_mode_sequence(&self) -> bool {
        self.mode_selector.is_none() && !matches!(self.control_policy, ControlPolicy::Alternate(_))
    }

    /// Sets the placement policy (see [`PlacementPolicy`]).
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the worker thread count (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the number of iterations.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Drives clocks from the wall clock, one virtual time unit lasting
    /// `time_unit`.
    pub fn with_real_time(mut self, time_unit: Duration) -> Self {
        self.clock_mode = ClockMode::RealTime { time_unit };
        self
    }

    /// Sets the ring-capacity slack factor (clamped to ≥ 1).
    pub fn with_capacity_slack(mut self, slack: u64) -> Self {
        self.capacity_slack = slack.max(1);
        self
    }

    /// Installs a structured tracing sink (see [`tpdf_trace::Tracer`]).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Tags every trace event of this execution with `tag` (Chrome
    /// export groups tags into processes; 0 = untagged).
    pub fn with_trace_tag(mut self, tag: u32) -> Self {
        self.trace_tag = tag;
        self
    }
}

/// Encodes a [`Mode`] into the 32-bit operand a
/// [`tpdf_trace::EventKind::ModeEmit`] event carries: `WaitAll` = 0,
/// `HighestPriority` = 1, `SelectOne(p)` = `0x100 | p`, and
/// `SelectMany(ps)` = `0x200 | ps.len()` (the port set itself stays in
/// the mode log).
pub fn mode_code(mode: &Mode) -> u32 {
    match mode {
        Mode::WaitAll => 0,
        Mode::HighestPriority => 1,
        Mode::SelectOne(port) => 0x100 | (*port as u32 & 0xFF),
        Mode::SelectMany(ports) => 0x200 | (ports.len() as u32 & 0xFF),
    }
}

/// One channel of a running graph: a data ring of tokens or a control
/// ring of modes. Both are lock-free SPSC rings.
#[derive(Debug)]
enum ChannelRing {
    Data(RingBuffer<Token>),
    Control(RingBuffer<Mode>),
}

/// Static, per-node facts precomputed at executor construction.
#[derive(Debug)]
struct NodeInfo {
    name: Arc<str>,
    /// Control actor in the paper's sense (includes Clock kernels).
    is_control_actor: bool,
    is_clock: bool,
    clock_period: u64,
    is_transaction: bool,
    votes_required: u32,
    is_select_duplicate: bool,
    control_port: Option<usize>,
    /// The control port is fed by a Clock (deadline semantics apply).
    control_from_clock: bool,
    /// Data input channels in port order.
    data_inputs: Vec<usize>,
    /// Data output channels in port order.
    data_outputs: Vec<usize>,
    /// Control output channels.
    control_outputs: Vec<usize>,
    /// Nodes whose readiness a firing of this node can change: itself,
    /// the consumers of its outputs, the producers of its inputs.
    neighbors: Vec<usize>,
}

/// Static, binding-independent per-channel facts.
#[derive(Debug)]
struct ChanInfo {
    label: Arc<str>,
    source: usize,
    target: usize,
    is_control: bool,
    initial_tokens: u64,
    priority: u32,
    /// The consuming node owns a control port (flush rule applies).
    target_controlled: bool,
}

/// Everything an iteration's binding determines, precomputed per
/// distinct phase of the binding sequence at construction: repetition
/// counts, concrete rates and ring capacities. Plans are immutable;
/// the barrier switches the active plan index, and the budget
/// republication (`Release` stores Acquire-paired at the claim gate)
/// is what publishes the switch to the workers.
#[derive(Debug)]
struct Plan {
    /// The effective binding of this phase.
    binding: Binding,
    /// Repetition counts (indexed by node).
    counts: Vec<u64>,
    /// Sum of `counts`: completions per iteration.
    total_per_iter: u64,
    /// Concrete cyclo-static production rates (indexed by channel).
    prod_rates: Vec<Vec<u64>>,
    /// Concrete cyclo-static consumption rates (indexed by channel).
    cons_rates: Vec<Vec<u64>>,
    /// Ring capacities this phase requires (indexed by channel).
    capacities: Vec<u64>,
    /// Under [`PlacementPolicy::Affinity`]: the `tpdf-manycore` mapping
    /// of this phase (workloads = this phase's repetition counts ×
    /// execution times, one cluster per configured worker). `None`
    /// under work stealing.
    mapping: Option<Mapping>,
    /// Node → home worker derived from `mapping` (empty under work
    /// stealing). Indexed by node; values are `< config.threads` and
    /// reduced mod the actual worker count at use sites, so a pooled
    /// run with fewer workers stays in bounds.
    home: Vec<usize>,
}

impl Plan {
    fn prod_rate(&self, chan: usize, ordinal: u64) -> u64 {
        let rates = &self.prod_rates[chan];
        rates[(ordinal as usize) % rates.len()]
    }

    fn cons_rate(&self, chan: usize, ordinal: u64) -> u64 {
        let rates = &self.cons_rates[chan];
        rates[(ordinal as usize) % rates.len()]
    }

    /// Tokens produced on `chan` during one complete iteration of this
    /// plan.
    fn production_per_iteration(&self, chan: usize, count: u64) -> u64 {
        (0..count).map(|k| self.prod_rate(chan, k)).sum()
    }
}

/// Per-node mutable scheduling state, all atomic.
#[derive(Debug, Default)]
struct NodeRunState {
    /// Exclusivity: set while a worker owns this node's next firing.
    claimed: AtomicBool,
    /// Set while a hint for this node sits in some ready queue.
    queued: AtomicBool,
    /// Firings *remaining* in the current iteration — the claim gate.
    /// Zero while the iteration barrier runs; the barrier's `Release`
    /// republication is what hands the barrier's ring flushes, ring
    /// growth and plan switch to the `Acquire`ing claimant (a claimant
    /// that reads a stale zero simply retires without touching any
    /// ring).
    budget: AtomicU64,
    /// Firings completed across the whole run.
    fired_total: AtomicU64,
    /// Firing ordinal the mode selector sees (one per control-actor
    /// firing, never reset).
    control_firings: AtomicU64,
}

/// Fields behind the park mutex: error/done teardown and the rare
/// deadline-decision log.
#[derive(Debug, Default)]
struct ParkInner {
    error: Option<RuntimeError>,
    done: bool,
    deadline_selections: Vec<DeadlineSelection>,
}

/// Below this measured per-firing cost, secondary workers back off and
/// leave the graph to one worker: the scheduling cost of distributing a
/// firing (claim CAS, queue traffic, a wake-up) exceeds what
/// parallelism can recover. Heavy kernels — real compute, simulated
/// execution times, I/O waits — stay far above it and parallelise
/// fully. The figure comes from the measured claim/complete overhead
/// (≈ 0.5–1 µs per firing).
const FINE_GRAIN_NS: u64 = 10_000;

/// Flight-recorder events a stall error dumps into its diagnostics —
/// enough to see the last few firings and the park/wake churn leading
/// into the stall, small enough to keep the error message bounded.
pub const STALL_DUMP_EVENTS: usize = 32;

/// Sampled firing-cost telemetry (1 in 8 firings is timed): an
/// exponentially weighted moving average (α = 1/8) in nanoseconds,
/// feeding the granularity heuristic. An EWMA — not a cumulative mean —
/// so a registry whose kernel weight changes between `run` calls
/// re-classifies within a few dozen samples instead of being anchored
/// by the whole history.
///
/// The telemetry is shared (`Arc`): it lives on the [`Executor`] so the
/// verdict learned in one run carries into the next, and a
/// [`crate::pool::ExecutorPool`] hands the *same* telemetry to every
/// executor it builds, so the classification survives across executors
/// too — a fine-grained graph learned in run 1 starts run 2 already
/// collapsed to the single-worker fast path, with no re-sampling from
/// scratch.
#[derive(Debug, Default)]
pub(crate) struct CostTelemetry {
    ewma_ns: AtomicU64,
    samples: AtomicU64,
}

impl CostTelemetry {
    /// Folds one firing-cost sample into the EWMA (α = 1/8; the first
    /// sample seeds the average). Samples race only against each other
    /// and the estimate is advisory, so `Relaxed` suffices — a lost
    /// update costs one sample's weight, not correctness.
    fn record(&self, sample_ns: u64) {
        if self.samples.fetch_add(1, Ordering::Relaxed) == 0 {
            self.ewma_ns.store(sample_ns, Ordering::Relaxed);
        } else {
            let old = self.ewma_ns.load(Ordering::Relaxed);
            self.ewma_ns
                .store(old - old / 8 + sample_ns / 8, Ordering::Relaxed);
        }
    }

    /// Whether the sampled firing cost says firings are too cheap to be
    /// worth distributing across workers.
    fn fine_grained(&self) -> bool {
        self.samples.load(Ordering::Relaxed) >= 8
            && self.ewma_ns.load(Ordering::Relaxed) < FINE_GRAIN_NS
    }

    /// The current estimate in nanoseconds, `None` before any sample.
    pub(crate) fn sampled_firing_cost_ns(&self) -> Option<u64> {
        (self.samples.load(Ordering::Relaxed) > 0).then(|| self.ewma_ns.load(Ordering::Relaxed))
    }
}

/// All mutable state of one `run`, shared across the worker pool.
pub(crate) struct RunState {
    rings: Vec<ChannelRing>,
    nodes: Vec<NodeRunState>,
    tokens_pushed: Vec<AtomicU64>,
    /// Data channels consumed at least once this iteration (flush rule).
    selected: Vec<AtomicBool>,
    /// Index of the active [`Plan`]. Written only by the iteration
    /// barrier, read by claim holders *after* their `Acquire` budget
    /// load — the barrier stores it before republishing budgets, so a
    /// nonzero budget implies a fresh plan index.
    plan: AtomicUsize,
    /// Completions remaining in the current iteration; the worker that
    /// decrements it to zero runs the iteration barrier.
    remaining_iter: AtomicU64,
    iteration: AtomicU64,
    /// Workers currently holding a claim or attempting one — part of
    /// the stall-detection protocol (see [`Executor::park`]).
    in_flight: AtomicUsize,
    halt: AtomicBool,
    /// Bumped after every completed firing; parkers use it to detect
    /// progress that raced with their failed scan.
    epoch: AtomicU64,
    parked: AtomicUsize,
    deadline_misses: AtomicU64,
    vote_failures: AtomicU64,
    /// Per-worker ready queues (hints, not obligations: a stale entry
    /// is simply dropped when its claim fails). Under affinity
    /// placement, completions route each hint to the *home worker's*
    /// queue instead of the completing worker's.
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// Firings completed per worker (indexed like `queues`).
    worker_firings: Vec<AtomicU64>,
    /// Firings a worker acquired across the placement boundary: hints
    /// popped from a foreign queue (work stealing) or foreign-home
    /// nodes fired while starved (affinity).
    worker_steals: Vec<AtomicU64>,
    /// Modes emitted per node, one entry per firing. Only the claim
    /// holder of a node appends (firings of one node are serialised),
    /// so the lock is uncontended; it exists to make the Vec shareable.
    mode_log: Vec<Mutex<Vec<Mode>>>,
    /// Parameter rebindings applied at iteration barriers.
    rebinds: Mutex<Vec<RebindEvent>>,
    /// Slab-arena traffic summed over the workers' private arenas, each
    /// flushed once when its worker leaves the loop (never per firing).
    arena_hits: AtomicU64,
    arena_misses: AtomicU64,
    arena_recycled: AtomicU64,
    arena_retired: AtomicU64,
    /// Job tag stamped on this run's trace events (see
    /// [`RuntimeConfig::trace_tag`]; a pool overwrites 0 with a fresh
    /// tag before starting workers).
    pub(crate) trace_job: u32,
    park: Mutex<ParkInner>,
    cond: Condvar,
}

impl RunState {
    fn data_ring(&self, chan: usize) -> &RingBuffer<Token> {
        match &self.rings[chan] {
            ChannelRing::Data(ring) => ring,
            ChannelRing::Control(_) => unreachable!("data port backed by control ring"),
        }
    }

    fn control_ring(&self, chan: usize) -> &RingBuffer<Mode> {
        match &self.rings[chan] {
            ChannelRing::Control(ring) => ring,
            ChannelRing::Data(_) => unreachable!("control port backed by data ring"),
        }
    }

    /// Adds one worker arena's lifetime counters into the run totals.
    fn flush_arena(&self, stats: ArenaStats) {
        self.arena_hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.arena_misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.arena_recycled
            .fetch_add(stats.recycled, Ordering::Relaxed);
        self.arena_retired
            .fetch_add(stats.retired, Ordering::Relaxed);
    }
}

/// A claimed firing: inputs consumed, ready to compute. Output space
/// was verified before the inputs were popped; the claim holder is the
/// sole producer of its output rings, so the space cannot disappear.
struct Claim {
    node: usize,
    /// Firing ordinal within the iteration (selects cyclo-static rates).
    ordinal_iter: u64,
    /// Firing ordinal across the run (exposed to behaviours).
    ordinal_total: u64,
    /// The plan this firing was claimed under (stable while the claim
    /// is held: a rebind requires this node's budget to reach zero
    /// first).
    plan: usize,
    mode: Mode,
    inputs: Vec<PortInput>,
    deadline_missed: bool,
    /// Record a [`DeadlineSelection`] for this firing.
    record_deadline: bool,
}

/// Per-worker scratch threaded through the firing path: the local
/// firing counter that drives the 1-in-8 sampling cadence, the cached
/// trace timestamp that unsampled firings stamp their events with —
/// tracing then costs one clock read per *sampled* firing instead of
/// per firing, which is what keeps the flight recorder within its
/// overhead budget on fine-grained graphs — and the worker's memory
/// recycling state: the slab arena its firing slabs cycle through,
/// the spare port-entry containers, and the scalar buffer the mode
/// selector reads from. Together these make a steady-state firing
/// allocation-free.
struct FireScratch {
    fired: u64,
    ts_ns: u64,
    /// Sampling cadence of the cost/trace timer as a power-of-two mask
    /// (`fired & mask == 1` samples). Workers use 1-in-8; the
    /// single-worker fast path stretches to 1-in-64 — it only runs
    /// *after* the fine-grained verdict converged, so it needs enough
    /// samples to notice a kernel growing coarse again, not to build
    /// the estimate from scratch, and on sub-microsecond firings the
    /// two clock reads per sample are themselves a measurable tax.
    sample_mask: u64,
    /// Recycled `Vec<Token>` firing slabs, bucketed by capacity class.
    arena: SlabArena<Token>,
    /// The previous firing's (drained) port containers, reused so the
    /// `Vec<PortInput>`/`Vec<PortOutput>` of a context cost nothing
    /// either.
    spare_inputs: Vec<PortInput>,
    spare_outputs: Vec<PortOutput>,
    /// Idle port entries parked per node, with their shared channel
    /// labels still attached: reusing an entry skips the two `Arc`
    /// refcount round-trips per port per firing that rebuilding one
    /// costs (lazily sized to the node count on first use).
    ports: Vec<NodePorts>,
    /// Reused scalar-view buffer for data-dependent mode selection.
    scalars: Vec<i64>,
    /// Arena counters already emitted as trace events (the
    /// `SlabRecycle`/`SlabMiss` pair rides the sampling cadence and
    /// reports deltas since the previous sampled firing).
    traced: ArenaStats,
}

/// One node's parked port entries (see [`FireScratch::ports`]).
#[derive(Default)]
struct NodePorts {
    inputs: Vec<PortInput>,
    outputs: Vec<PortOutput>,
    /// The node-name handle of the last [`FiringContext`] this worker
    /// built for the node, parked here when the context is dismantled
    /// so the next firing's context skips the clone/drop pair on the
    /// shared `Arc<str>`.
    name: Option<Arc<str>>,
}

impl Default for FireScratch {
    fn default() -> Self {
        FireScratch {
            fired: 0,
            ts_ns: 0,
            sample_mask: 7,
            arena: SlabArena::default(),
            spare_inputs: Vec::new(),
            spare_outputs: Vec::new(),
            ports: Vec::new(),
            scalars: Vec::new(),
            traced: ArenaStats::default(),
        }
    }
}

impl FireScratch {
    /// The parked entries of `node`, growing the table on first touch.
    fn node_ports(&mut self, node: usize) -> &mut NodePorts {
        if self.ports.len() <= node {
            self.ports.resize_with(node + 1, NodePorts::default);
        }
        &mut self.ports[node]
    }
}

/// The multi-threaded executor of one TPDF graph.
///
/// # Examples
///
/// ```
/// use tpdf_core::examples::figure2_graph;
/// use tpdf_runtime::executor::{Executor, RuntimeConfig};
/// use tpdf_runtime::kernel::KernelRegistry;
/// use tpdf_symexpr::Binding;
///
/// # fn main() -> Result<(), tpdf_runtime::RuntimeError> {
/// let graph = figure2_graph();
/// let config = RuntimeConfig::new(Binding::from_pairs([("p", 2)]))
///     .with_threads(4)
///     .with_iterations(3);
/// let metrics = Executor::new(&graph, config)?.run(&KernelRegistry::new())?;
/// // q = [2, 2p, p, p, 2p, 2p] with p = 2, three iterations.
/// assert_eq!(metrics.firings, vec![6, 12, 6, 6, 12, 12]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Executor<'g> {
    /// Kept for diagnostics and lifetime-tying to the analysed graph.
    graph: &'g TpdfGraph,
    /// Everything a run needs, owned — the same `Arc` a persistent
    /// [`crate::pool::ExecutorPool`] clones into its long-lived
    /// workers, which is why the engine borrows nothing.
    engine: Arc<Engine>,
}

/// The owned heart of an [`Executor`]: precomputed plans, per-node and
/// per-channel facts, and the worker-loop implementation. Split from
/// the graph-borrowing shell so a [`crate::pool::ExecutorPool`]'s
/// `'static` worker threads can share it through an `Arc`.
#[derive(Debug)]
pub(crate) struct Engine {
    config: RuntimeConfig,
    /// One precomputed execution plan per phase of the binding
    /// sequence; iteration `k` runs plan `min(k, plans.len() - 1)`.
    plans: Vec<Plan>,
    nodes: Vec<NodeInfo>,
    chans: Vec<ChanInfo>,
    /// The mode selector in effect (the control policy wrapped as one,
    /// unless a data-dependent selector is configured).
    selector: Arc<dyn ModeSelector>,
    /// Fallback scan order: control actors first (Section III-D
    /// priority rule), then kernels.
    scan_order: Vec<usize>,
    clock_nodes: Vec<usize>,
    /// Shared firing-cost telemetry (see [`CostTelemetry`]).
    telemetry: Arc<CostTelemetry>,
    /// Reference cost of one iteration in virtual work units: the
    /// maximum over the binding sequence's phases of Σ repetition
    /// count × execution time — what admission control compares
    /// against a deadline period.
    cost_units: u64,
    /// The shortest Clock period in the graph, if any — under
    /// [`ClockMode::RealTime`] one iteration must complete within it.
    min_clock_period: Option<u64>,
    /// Liveness counters for external watchdogs (see
    /// [`ProgressBeacon`]); shared by every run of this compilation
    /// through the engine `Arc`, so it survives checkpoint/migrate.
    beacon: ProgressBeacon,
}

impl<'g> Executor<'g> {
    /// Builds an executor: checks consistency, concretises rates and
    /// sizes every ring — data rings from a reference `tpdf-sim`
    /// execution, control rings from their per-iteration production.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Analysis`] when the graph is inconsistent
    /// or the binding incomplete, and propagates any error of the
    /// reference sizing run.
    pub fn new(graph: &'g TpdfGraph, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        Self::with_telemetry(graph, config, Arc::new(CostTelemetry::default()))
    }

    /// Builds an executor whose firing-cost telemetry is shared with
    /// the caller — how [`crate::pool::ExecutorPool::executor`] makes
    /// granularity classification survive across executors.
    pub(crate) fn with_telemetry(
        graph: &'g TpdfGraph,
        config: RuntimeConfig,
        telemetry: Arc<CostTelemetry>,
    ) -> Result<Self, RuntimeError> {
        Ok(Executor {
            graph,
            engine: Arc::new(Engine::new(graph, config, telemetry)?),
        })
    }

    /// The graph this executor runs.
    pub fn graph(&self) -> &'g TpdfGraph {
        self.graph
    }

    /// The owned engine, for the pool to clone into run jobs.
    pub(crate) fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The initial ring capacity of every channel. Data rings are
    /// sized from the reference high-water marks times the slack;
    /// control rings from their per-iteration production (an exact
    /// occupancy bound). Under a binding sequence this is the first
    /// iteration's sizing — see
    /// [`Executor::capacities_for_iteration`].
    pub fn capacities(&self) -> &[u64] {
        &self.engine.plans[0].capacities
    }

    /// The ring capacities iteration `k` requires (rings grow to the
    /// running maximum of these at the iteration barriers).
    pub fn capacities_for_iteration(&self, iteration: u64) -> &[u64] {
        &self.engine.plans[self.engine.phase_of(iteration)].capacities
    }

    /// The per-iteration repetition count of every node (first
    /// iteration's counts under a binding sequence).
    pub fn repetition_counts(&self) -> &[u64] {
        &self.engine.plans[0].counts
    }

    /// The repetition counts of iteration `k`.
    pub fn repetition_counts_for_iteration(&self, iteration: u64) -> &[u64] {
        &self.engine.plans[self.engine.phase_of(iteration)].counts
    }

    /// The node-to-cluster mapping iteration `k` runs under, when the
    /// placement policy is [`PlacementPolicy::Affinity`] (`None` under
    /// work stealing). Phases of a binding sequence are mapped
    /// independently — repetition counts change with the binding, so
    /// the workloads and the pinning do too.
    pub fn mapping_for_iteration(&self, iteration: u64) -> Option<&Mapping> {
        self.engine.plans[self.engine.phase_of(iteration)]
            .mapping
            .as_ref()
    }

    /// The current firing-cost estimate in nanoseconds: an EWMA
    /// (α = 1/8) over the sampled firings of every `run` on this
    /// executor, or `None` before the first sample. Feeds the
    /// granularity heuristic that decides whether a graph is worth
    /// distributing across workers.
    pub fn sampled_firing_cost_ns(&self) -> Option<u64> {
        self.engine.telemetry.sampled_firing_cost_ns()
    }

    /// Detaches this executor's owned engine as a [`CompiledExecutor`]:
    /// a `'static`, graph-independent handle that can outlive the
    /// borrowed graph and be submitted asynchronously to a
    /// [`crate::pool::ExecutorPool`] — the form a long-lived service
    /// session stores.
    pub fn compile(&self) -> CompiledExecutor {
        CompiledExecutor {
            engine: Arc::clone(&self.engine),
        }
    }

    /// Executes the configured number of iterations on a scoped worker
    /// pool (threads spawned per call — see
    /// [`crate::pool::ExecutorPool`] for the persistent alternative)
    /// and reports [`Metrics`].
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Stalled`] when no node can make progress;
    /// * [`RuntimeError::RateMismatch`] when a behaviour produced the
    ///   wrong number of tokens;
    /// * any [`RuntimeError::KernelFailed`] raised by a behaviour.
    pub fn run(&self, registry: &KernelRegistry) -> Result<Metrics, RuntimeError> {
        self.engine.run_scoped(registry)
    }

    /// Like [`Executor::run`], additionally capturing a
    /// barrier-consistent [`Checkpoint`] of the run's final state (the
    /// quiescent cut its last iteration barrier left). Run a *k*-
    /// iteration executor, checkpoint, and hand the checkpoint to an
    /// *N*-iteration executor's [`Executor::run_restored`] to split one
    /// logical run across executors — or processes, through
    /// [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run`].
    pub fn run_checkpointed(
        &self,
        registry: &KernelRegistry,
    ) -> Result<(Metrics, Checkpoint), RuntimeError> {
        self.engine.run_scoped_checkpointed(registry)
    }

    /// Resumes a checkpointed run mid-graph: rebuilds rings, budgets
    /// and metric prefixes from `checkpoint` and executes the remaining
    /// iterations. The resulting sink streams, mode sequences and
    /// firing counts are byte-identical to a run that never stopped —
    /// across thread counts and placement policies.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Checkpoint`] when the checkpoint belongs to a
    ///   different graph, disagrees in shape, or leaves nothing to
    ///   resume;
    /// * otherwise the same conditions as [`Executor::run`].
    pub fn run_restored(
        &self,
        registry: &KernelRegistry,
        checkpoint: &Checkpoint,
    ) -> Result<Metrics, RuntimeError> {
        self.engine.run_scoped_restored(registry, checkpoint)
    }
}

/// Liveness counters an external watchdog can poll without touching
/// the hot path: runs started/finished and iteration barriers crossed,
/// plus a coarse "last progress" timestamp. Barriers are the natural
/// progress grain — every firing budget of an iteration was exhausted
/// to reach one — so "no barrier within a budget while a run is in
/// flight" is exactly the stall signal the PR 6 stall dump keys on,
/// made observable instead of fatal.
///
/// All stores are `Relaxed`: the beacon is advisory telemetry, ordered
/// only with itself, and adds one `Instant::now` per *iteration* (not
/// per firing) to the barrier.
#[derive(Debug)]
pub(crate) struct ProgressBeacon {
    /// Construction time; progress timestamps are nanoseconds since
    /// this epoch (0 = never), so one `AtomicU64` carries them.
    epoch: Instant,
    barriers: AtomicU64,
    runs_started: AtomicU64,
    runs_finished: AtomicU64,
    last_progress_ns: AtomicU64,
}

impl ProgressBeacon {
    fn new() -> Self {
        ProgressBeacon {
            epoch: Instant::now(),
            barriers: AtomicU64::new(0),
            runs_started: AtomicU64::new(0),
            runs_finished: AtomicU64::new(0),
            last_progress_ns: AtomicU64::new(0),
        }
    }

    fn now_ns(&self) -> u64 {
        // `max(1)` keeps 0 reserved for "no progress ever".
        (self.epoch.elapsed().as_nanos() as u64).max(1)
    }

    fn touch(&self) {
        self.last_progress_ns
            .store(self.now_ns(), Ordering::Relaxed);
    }

    fn barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
        self.touch();
    }

    fn run_started(&self) {
        self.runs_started.fetch_add(1, Ordering::Relaxed);
        self.touch();
    }

    fn run_finished(&self) {
        self.runs_finished.fetch_add(1, Ordering::Relaxed);
        self.touch();
    }

    fn snapshot(&self) -> ProgressSnapshot {
        let last = self.last_progress_ns.load(Ordering::Relaxed);
        ProgressSnapshot {
            barriers: self.barriers.load(Ordering::Relaxed),
            runs_started: self.runs_started.load(Ordering::Relaxed),
            runs_finished: self.runs_finished.load(Ordering::Relaxed),
            since_progress: if last == 0 {
                None
            } else {
                Some(Duration::from_nanos(self.now_ns().saturating_sub(last)))
            },
        }
    }
}

/// A point-in-time view of a [`CompiledExecutor`]'s progress beacon —
/// what `tpdf-ops`' stall watchdog polls. `since_progress` is `None`
/// until the executor has run at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSnapshot {
    /// Iteration barriers crossed over the executor's lifetime (all
    /// runs, all sessions sharing the compilation).
    pub barriers: u64,
    /// Runs entered (fresh or restored from a checkpoint).
    pub runs_started: u64,
    /// Runs whose metrics were collected (successful or failed).
    pub runs_finished: u64,
    /// Wall-clock time since the last progress signal (run start,
    /// barrier, or run finish); `None` before the first run.
    pub since_progress: Option<Duration>,
}

/// An owned, `'static` executable form of an [`Executor`]: the analysed
/// plans, per-node facts and shared telemetry behind one `Arc`, with no
/// borrow of the source graph. This is what a multi-session service
/// keeps per session — the graph can be dropped after compilation — and
/// what [`crate::pool::ExecutorPool::submit`] accepts for asynchronous
/// (caller-non-participating) execution.
///
/// Cloning is cheap (an `Arc` bump) and clones share telemetry.
#[derive(Debug, Clone)]
pub struct CompiledExecutor {
    engine: Arc<Engine>,
}

impl CompiledExecutor {
    /// The configuration the compiled runs execute under.
    pub fn config(&self) -> &RuntimeConfig {
        self.engine.config()
    }

    /// The per-iteration repetition count of every node (first phase's
    /// counts under a binding sequence).
    pub fn repetition_counts(&self) -> &[u64] {
        &self.engine.plans[0].counts
    }

    /// Reference cost of one iteration in virtual work units (Σ
    /// repetition count × node execution time, maximised over the
    /// phases of the binding sequence). Admission control divides this
    /// by [`CompiledExecutor::min_clock_period`] to estimate the
    /// processor share a deadline-driven session demands.
    pub fn estimated_cost_units(&self) -> u64 {
        self.engine.cost_units
    }

    /// The shortest Clock period in the graph (virtual time units), if
    /// the graph has any Clock watchdog. Under
    /// [`ClockMode::RealTime`] one iteration must complete within it.
    pub fn min_clock_period(&self) -> Option<u64> {
        self.engine.min_clock_period
    }

    /// A point-in-time view of the progress beacon: runs started and
    /// finished, iteration barriers crossed, and time since the last
    /// progress signal. Lock-free; safe to poll from a sampler thread
    /// while runs execute.
    pub fn progress(&self) -> ProgressSnapshot {
        self.engine.beacon.snapshot()
    }

    /// The engine, for the pool's submission path.
    pub(crate) fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }
}

impl Engine {
    fn new(
        graph: &TpdfGraph,
        config: RuntimeConfig,
        telemetry: Arc<CostTelemetry>,
    ) -> Result<Self, RuntimeError> {
        if config.iterations == 0 {
            return Err(RuntimeError::InvalidConfig(
                "at least one iteration must be requested".to_string(),
            ));
        }
        // `with_threads` clamps, but `threads` is a public field: a zero
        // slipping through would make `run` return an empty Ok no-op.
        if config.threads == 0 {
            return Err(RuntimeError::InvalidConfig(
                "at least one worker thread is required".to_string(),
            ));
        }
        let repetition = tpdf_core::consistency::symbolic_repetition_vector(graph)
            .map_err(|e| RuntimeError::Analysis(e.to_string()))?;

        // One execution plan per phase of the binding sequence.
        let phase_count = config.binding_sequence.len().max(1);
        let phase_bindings: Vec<Binding> = (0..phase_count as u64)
            .map(|k| config.binding_for(k))
            .collect();

        // Reference execution: per-channel high-water marks under the
        // same selector and bindings determine the data-ring
        // capacities. One iteration suffices only when the binding AND
        // every emitted mode are the same each iteration — firing
        // ordinals never reset, so an `Alternate` policy or a custom
        // selector can choose differently later and a ring sized from
        // iteration 0 could deadlock a rejected-then-full channel.
        // Otherwise the whole run is simulated, so every iteration's
        // occupancy is observed.
        let reference_iterations = if phase_count == 1 && config.constant_mode_sequence() {
            1
        } else {
            config.iterations
        };
        let reference = Simulator::new(graph, config.reference_sim_config())
            .map_err(|e| RuntimeError::Analysis(e.to_string()))?
            .run_iterations(reference_iterations)
            .map_err(|e| RuntimeError::Analysis(format!("reference sizing run failed: {e}")))?;

        let clock_sources: BTreeSet<NodeId> = graph
            .nodes()
            .filter(|(_, n)| matches!(n.kernel_kind(), Some(k) if k.is_clock()))
            .map(|(id, _)| id)
            .collect();
        let control_actor_ids: BTreeSet<NodeId> =
            graph.control_actors().map(|(id, _)| id).collect();

        let mut chans = Vec::with_capacity(graph.channel_count());
        for (id, chan) in graph.channels() {
            chans.push(ChanInfo {
                label: Arc::from(chan.label.as_str()),
                source: chan.source.0,
                target: chan.target.0,
                is_control: chan.is_control(),
                initial_tokens: chan.initial_tokens,
                priority: chan.priority,
                target_controlled: graph.control_port(chan.target).is_some(),
            });
            debug_assert_eq!(id.0, chans.len() - 1);
        }

        let mut nodes = Vec::with_capacity(graph.node_count());
        for (id, node) in graph.nodes() {
            let kind = node.kernel_kind();
            let control_port = graph.control_port(id).map(|c| c.0);
            let control_from_clock = graph
                .control_port(id)
                .map(|cp| clock_sources.contains(&graph.channel(cp).source))
                .unwrap_or(false);
            let data_inputs: Vec<usize> = graph.data_input_channels(id).map(|(c, _)| c.0).collect();
            let mut data_outputs = Vec::new();
            let mut control_outputs = Vec::new();
            for (c, chan) in graph.output_channels(id) {
                if chan.is_control() {
                    control_outputs.push(c.0);
                } else {
                    data_outputs.push(c.0);
                }
            }
            let mut neighbors = BTreeSet::new();
            neighbors.insert(id.0);
            for &c in data_outputs.iter().chain(&control_outputs) {
                neighbors.insert(chans[c].target);
            }
            for &c in &data_inputs {
                neighbors.insert(chans[c].source);
            }
            if let Some(cp) = control_port {
                neighbors.insert(chans[cp].source);
            }
            nodes.push(NodeInfo {
                name: Arc::from(node.name.as_str()),
                is_control_actor: control_actor_ids.contains(&id),
                is_clock: matches!(kind, Some(k) if k.is_clock()),
                clock_period: kind.and_then(|k| k.clock_period()).unwrap_or(0),
                is_transaction: matches!(kind, Some(k) if k.is_transaction()),
                votes_required: match kind {
                    Some(KernelKind::Transaction { votes_required }) => *votes_required,
                    _ => 0,
                },
                is_select_duplicate: matches!(kind, Some(k) if k.is_select_duplicate()),
                control_port,
                control_from_clock,
                data_inputs,
                data_outputs,
                control_outputs,
                neighbors: neighbors.into_iter().collect(),
            });
        }

        let mut plans = Vec::with_capacity(phase_count);
        for (phase, binding) in phase_bindings.iter().enumerate() {
            let counts = repetition
                .concrete(binding)
                .map_err(|e| RuntimeError::Analysis(e.to_string()))?;
            let mut prod_rates = Vec::with_capacity(chans.len());
            let mut cons_rates = Vec::with_capacity(chans.len());
            for (_, chan) in graph.channels() {
                let concretise =
                    |rates: &tpdf_core::rate::RateSeq| -> Result<Vec<u64>, RuntimeError> {
                        (0..rates.phases() as u64)
                            .map(|i| {
                                rates
                                    .concrete(i, binding)
                                    .map_err(|e| RuntimeError::Analysis(e.to_string()))
                            })
                            .collect()
                    };
                prod_rates.push(concretise(&chan.production)?);
                cons_rates.push(concretise(&chan.consumption)?);
            }
            // Affinity placement: map this phase's workload onto one
            // cluster per worker thread with `tpdf-manycore`'s mapper,
            // and pin every node to the worker of its cluster. Each
            // phase is mapped independently — a rebind changes the
            // repetition counts, hence the workloads, hence the homes.
            let (mapping, home) = match &config.placement {
                PlacementPolicy::WorkStealing => (None, Vec::new()),
                PlacementPolicy::Affinity(strategy) => {
                    let workloads = node_workloads(graph, &counts);
                    let platform = Platform::mppa_like(config.threads.max(1), 1, 0);
                    let mapping = map_graph(graph, &platform, *strategy, &workloads)
                        .map_err(|e| RuntimeError::Analysis(e.to_string()))?;
                    let home: Vec<usize> = mapping
                        .clusters()
                        .iter()
                        .map(|c| c.0 % config.threads.max(1))
                        .collect();
                    (Some(mapping), home)
                }
            };
            let mut plan = Plan {
                binding: binding.clone(),
                total_per_iter: counts.iter().sum(),
                counts,
                prod_rates,
                cons_rates,
                capacities: Vec::new(),
                mapping,
                home,
            };
            // The reference high-water of this phase: the whole-run
            // marks for the single-phase case, the maximum over the
            // phase's iterations otherwise (zero when the sequence
            // outlives the requested iterations — such a phase never
            // executes).
            let phase_high_water = |chan: usize| -> u64 {
                if phase_count == 1 {
                    return reference.channel_high_water[chan];
                }
                reference
                    .per_iteration
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| (*i).min(phase_count - 1) == phase)
                    .map(|(_, record)| record.channel_high_water[chan])
                    .max()
                    .unwrap_or(0)
            };
            plan.capacities = chans
                .iter()
                .enumerate()
                .map(|(i, info)| {
                    if info.is_control {
                        // Control tokens are produced and fully consumed
                        // within each iteration (rate consistency), so
                        // the per-iteration production bounds the
                        // occupancy exactly — no reference needed, no
                        // slack either.
                        (plan.production_per_iteration(i, plan.counts[info.source])
                            + info.initial_tokens)
                            .max(1)
                    } else {
                        phase_high_water(i)
                            .max(info.initial_tokens)
                            .max(1)
                            .saturating_mul(config.capacity_slack)
                    }
                })
                .collect();
            plans.push(plan);
        }

        let mut scan_order: Vec<usize> = (0..graph.node_count())
            .filter(|&n| nodes[n].is_control_actor)
            .collect();
        scan_order.extend((0..graph.node_count()).filter(|&n| !nodes[n].is_control_actor));
        let clock_nodes: Vec<usize> = (0..graph.node_count())
            .filter(|&n| nodes[n].is_clock)
            .collect();

        let selector = match &config.mode_selector {
            Some(selector) => Arc::clone(selector),
            None => Arc::new(config.control_policy.clone()) as Arc<dyn ModeSelector>,
        };
        let cost_units = plans
            .iter()
            .map(|plan| node_workloads(graph, &plan.counts).iter().sum())
            .max()
            .unwrap_or(0);
        let min_clock_period = nodes
            .iter()
            .filter(|n| n.is_clock && n.clock_period > 0)
            .map(|n| n.clock_period)
            .min();
        Ok(Engine {
            config,
            plans,
            nodes,
            chans,
            selector,
            scan_order,
            clock_nodes,
            telemetry,
            cost_units,
            min_clock_period,
            beacon: ProgressBeacon::new(),
        })
    }

    /// The configuration this engine runs under.
    pub(crate) fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The plan index of iteration `k`.
    fn phase_of(&self, iteration: u64) -> usize {
        (iteration as usize).min(self.plans.len() - 1)
    }

    /// The worker count a run should use right now: collapsed to one
    /// when the telemetry says the graph is fine-grained (Virtual
    /// clocks only — real-time kernels block on wall-clock work
    /// regardless of what the cost samples say), the configured count
    /// otherwise.
    pub(crate) fn effective_workers(&self) -> usize {
        if matches!(self.config.clock_mode, ClockMode::Virtual) && self.fine_grained() {
            1
        } else {
            self.config.threads
        }
    }

    /// Executes the configured number of iterations on a *scoped*
    /// worker pool: threads are spawned for this run and joined before
    /// returning. The persistent-pool path
    /// ([`crate::pool::ExecutorPool::run`]) shares everything below
    /// `worker_loop` with this one.
    pub(crate) fn run_scoped(&self, registry: &KernelRegistry) -> Result<Metrics, RuntimeError> {
        // Once the persistent telemetry has established that this
        // graph's firings are too cheap to distribute, secondary
        // workers would back off the moment they start — so don't pay
        // their spawn cost at all.
        let workers = self.effective_workers();
        let state = self.initial_state(workers);
        let start = Instant::now();
        self.drive(&state, registry, workers, start);
        self.collect_metrics(&state, start.elapsed(), workers)
    }

    /// Like [`Engine::run_scoped`], additionally capturing a
    /// barrier-consistent [`Checkpoint`] of the finished run's state —
    /// the quiescent state left by the final iteration barrier, before
    /// any teardown.
    pub(crate) fn run_scoped_checkpointed(
        &self,
        registry: &KernelRegistry,
    ) -> Result<(Metrics, Checkpoint), RuntimeError> {
        let workers = self.effective_workers();
        let state = self.initial_state(workers);
        let start = Instant::now();
        self.drive(&state, registry, workers, start);
        let metrics = self.collect_metrics(&state, start.elapsed(), workers)?;
        let checkpoint = self.capture_checkpoint(&state, &metrics);
        Ok((metrics, checkpoint))
    }

    /// Like [`Engine::run_scoped`], but resuming from `checkpoint`
    /// instead of the initial state: rings, budgets, metrics prefixes
    /// and control ordinals are rebuilt, then the run continues from
    /// iteration `checkpoint.iteration` to the configured count.
    pub(crate) fn run_scoped_restored(
        &self,
        registry: &KernelRegistry,
        checkpoint: &Checkpoint,
    ) -> Result<Metrics, RuntimeError> {
        let workers = self.effective_workers();
        let state = self.restore_state(checkpoint, workers)?;
        let start = Instant::now();
        self.drive(&state, registry, workers, start);
        self.collect_metrics(&state, start.elapsed(), workers)
    }

    /// Runs the worker loops over `state` to completion on a scoped
    /// thread pool — the execution core shared by the plain,
    /// checkpointing and restoring entry points.
    fn drive(&self, state: &RunState, registry: &KernelRegistry, workers: usize, start: Instant) {
        if workers == 1 && matches!(self.config.clock_mode, ClockMode::Virtual) {
            // Single-worker runs skip the coordination layer entirely:
            // no claim CAS, no in-flight bracketing, no epoch/wake
            // traffic, no ready-queue locks — just claim, execute,
            // publish. This is the path fine-grained graphs collapse
            // to whatever the configured pool size.
            self.run_single(state, registry, start);
        } else {
            std::thread::scope(|scope| {
                // The calling thread is worker 0: a 1-thread run spawns
                // no OS thread at all, and an N-thread run only N - 1 —
                // thread creation is a measurable fraction of short
                // runs.
                for me in 1..workers {
                    // A scoped secondary that stands down from a
                    // transiently fine-grained phase naps and
                    // re-enters: it has no other job to serve (unlike
                    // a pool worker), and the estimate may recover in
                    // a later, heavier phase.
                    scope.spawn(move || {
                        while self.worker_loop(state, me, registry, start) {
                            self.standdown_nap(state);
                        }
                    });
                }
                let _ = self.worker_loop(state, 0, registry, start);
            });
        }
    }

    /// Assembles the [`Metrics`] of a finished run. Borrows the state
    /// (locks are cloned out, not consumed) so the persistent pool can
    /// collect from a job its workers still hold an `Arc` to.
    pub(crate) fn collect_metrics(
        &self,
        state: &RunState,
        elapsed: Duration,
        effective_workers: usize,
    ) -> Result<Metrics, RuntimeError> {
        // A failed run still *finished* for liveness purposes — the
        // watchdog distinguishes failure from stall by the error, not
        // by a hung counter.
        self.beacon.run_finished();
        let park = state.park.lock().expect("no worker may panic");
        if let Some(error) = &park.error {
            return Err(error.clone());
        }
        let deadline_selections = park.deadline_selections.clone();
        drop(park);
        let firings: Vec<u64> = state
            .nodes
            .iter()
            .map(|n| n.fired_total.load(Ordering::Relaxed))
            .collect();
        let tokens_pushed: Vec<u64> = state
            .tokens_pushed
            .iter()
            .map(|t| t.load(Ordering::Relaxed))
            .collect();
        let channel_high_water: Vec<u64> = state
            .rings
            .iter()
            .map(|c| match c {
                ChannelRing::Data(ring) => ring.high_water() as u64,
                ChannelRing::Control(ring) => ring.high_water() as u64,
            })
            .collect();
        // Final capacities: rings may have grown at rebind barriers.
        let channel_capacity: Vec<u64> = state
            .rings
            .iter()
            .map(|c| match c {
                ChannelRing::Data(ring) => ring.capacity() as u64,
                ChannelRing::Control(ring) => ring.capacity() as u64,
            })
            .collect();
        let mode_sequences: Vec<Vec<Mode>> = state
            .mode_log
            .iter()
            .map(|log| log.lock().expect("no worker may panic").clone())
            .collect();
        let total_tokens: u64 = tokens_pushed.iter().sum();
        Ok(Metrics {
            iterations: state.iteration.load(Ordering::Relaxed),
            threads: self.config.threads,
            effective_workers,
            placement: self.config.placement,
            firings,
            tokens_pushed,
            channel_high_water,
            channel_capacity,
            total_tokens,
            elapsed,
            tokens_per_sec: if elapsed.is_zero() {
                0.0
            } else {
                total_tokens as f64 / elapsed.as_secs_f64()
            },
            deadline_misses: state.deadline_misses.load(Ordering::Relaxed),
            vote_failures: state.vote_failures.load(Ordering::Relaxed),
            deadline_selections,
            mode_sequences,
            worker_firings: state
                .worker_firings
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            worker_steals: state
                .worker_steals
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            rebinds: state.rebinds.lock().expect("no worker may panic").clone(),
            // Scoped runs have no persistent workers to pin; the pool
            // overwrites this with its own pinning record.
            pinned_cores: Vec::new(),
            arena_hits: state.arena_hits.load(Ordering::Relaxed),
            arena_misses: state.arena_misses.load(Ordering::Relaxed),
            arena_recycled: state.arena_recycled.load(Ordering::Relaxed),
            arena_retired: state.arena_retired.load(Ordering::Relaxed),
        })
    }

    pub(crate) fn initial_state(&self, workers: usize) -> RunState {
        self.beacon.run_started();
        let plan = &self.plans[0];
        let rings = self
            .chans
            .iter()
            .enumerate()
            .map(|(i, info)| {
                if info.is_control {
                    ChannelRing::Control(RingBuffer::new(
                        info.label.clone(),
                        plan.capacities[i] as usize,
                    ))
                } else {
                    let ring = RingBuffer::new(info.label.clone(), plan.capacities[i] as usize);
                    for _ in 0..info.initial_tokens {
                        ring.push(Token::Unit)
                            .expect("capacity covers initial tokens");
                    }
                    ChannelRing::Data(ring)
                }
            })
            .collect();
        let nodes: Vec<NodeRunState> = (0..self.nodes.len())
            .map(|n| {
                let ns = NodeRunState::default();
                ns.budget.store(plan.counts[n], Ordering::Relaxed);
                ns
            })
            .collect();
        RunState {
            rings,
            nodes,
            tokens_pushed: (0..self.chans.len()).map(|_| AtomicU64::new(0)).collect(),
            selected: (0..self.chans.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
            plan: AtomicUsize::new(0),
            remaining_iter: AtomicU64::new(plan.total_per_iter),
            iteration: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            halt: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            deadline_misses: AtomicU64::new(0),
            vote_failures: AtomicU64::new(0),
            // Hints are deduplicated by the per-node `queued` flag, so
            // all queues together never hold more than one entry per
            // node — reserving that bound up front keeps `VecDeque`
            // growth off the steady-state firing path.
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::with_capacity(self.nodes.len() + 1)))
                .collect(),
            worker_firings: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            worker_steals: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            // Mode logs grow by one entry per control-actor firing;
            // reserving the whole run's worth (bounded, for very long
            // runs) keeps their doubling reallocations out of the
            // steady state too.
            mode_log: (0..self.nodes.len())
                .map(|n| {
                    let per_iter = if self.nodes[n].control_outputs.is_empty() {
                        0
                    } else {
                        self.plans.iter().map(|p| p.counts[n]).max().unwrap_or(0)
                    };
                    let reserve = (per_iter * self.config.iterations).min(1 << 16) as usize;
                    Mutex::new(Vec::with_capacity(reserve))
                })
                .collect(),
            rebinds: Mutex::new(Vec::new()),
            arena_hits: AtomicU64::new(0),
            arena_misses: AtomicU64::new(0),
            arena_recycled: AtomicU64::new(0),
            arena_retired: AtomicU64::new(0),
            trace_job: self.config.trace_tag,
            park: Mutex::new(ParkInner::default()),
            cond: Condvar::new(),
        }
    }

    /// A structural fingerprint of the graph this engine executes: node
    /// names plus channel topology (label, endpoints, control flag,
    /// initial tokens), hashed with the checkpoint codec's FNV-1a.
    /// Deliberately *excludes* iteration count, thread count, placement
    /// and ring capacities — a checkpoint may be restored under any of
    /// those varying (Kahn determinacy keeps the streams identical);
    /// what it must never be restored into is a different graph.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::new();
        for node in &self.nodes {
            bytes.extend_from_slice(node.name.as_bytes());
            bytes.push(0xFF);
        }
        for chan in &self.chans {
            bytes.extend_from_slice(chan.label.as_bytes());
            bytes.push(0xFE);
            bytes.extend_from_slice(&(chan.source as u64).to_le_bytes());
            bytes.extend_from_slice(&(chan.target as u64).to_le_bytes());
            bytes.push(chan.is_control as u8);
            bytes.extend_from_slice(&chan.initial_tokens.to_le_bytes());
        }
        crate::checkpoint::checksum(&bytes)
    }

    /// Captures a barrier-consistent [`Checkpoint`] from a *finished*
    /// run's state: every worker has halted, so the rings are quiescent
    /// (the [`RingBuffer::snapshot_contents`] contract) and hold
    /// exactly the inter-iteration tokens the final barrier left.
    /// `metrics` is the run's collected [`Metrics`], embedded so a
    /// restore can rebuild the firing/token/mode/rebind prefixes.
    pub(crate) fn capture_checkpoint(&self, state: &RunState, metrics: &Metrics) -> Checkpoint {
        let iteration = state.iteration.load(Ordering::Relaxed);
        if let Some(t) = self.trace() {
            t.event(
                0,
                EventKind::CheckpointBegin,
                state.trace_job,
                0,
                0,
                iteration,
            );
        }
        let channels: Vec<ChannelCheckpoint> = state
            .rings
            .iter()
            .map(|ring| match ring {
                ChannelRing::Data(ring) => ChannelCheckpoint {
                    capacity: ring.capacity() as u64,
                    contents: ChannelContents::Data(ring.snapshot_contents()),
                },
                ChannelRing::Control(ring) => ChannelCheckpoint {
                    capacity: ring.capacity() as u64,
                    contents: ChannelContents::Control(ring.snapshot_contents()),
                },
            })
            .collect();
        let checkpoint = Checkpoint {
            iteration,
            fingerprint: self.fingerprint(),
            control_firings: state
                .nodes
                .iter()
                .map(|n| n.control_firings.load(Ordering::Relaxed))
                .collect(),
            channels,
            captured: Vec::new(),
            metrics: metrics.clone(),
        };
        if let Some(t) = self.trace() {
            t.event(
                0,
                EventKind::CheckpointEnd,
                state.trace_job,
                checkpoint.channels.len() as u64,
                0,
                iteration,
            );
        }
        checkpoint
    }

    /// Rebuilds a [`RunState`] from a checkpoint, resuming at iteration
    /// `checkpoint.iteration`. Replays the plan switch the
    /// checkpointing run's final barrier skipped (its done-check fires
    /// before the switch): the phase, ring growth, budgets and — when
    /// the phase changed — the [`RebindEvent`] all match what an
    /// uninterrupted run performs at that same barrier.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::GraphMismatch`] / `ShapeMismatch` when the
    /// checkpoint belongs to a different graph or compilation;
    /// [`CheckpointError::NothingToResume`] when the configured
    /// iteration count is not beyond the checkpoint.
    pub(crate) fn restore_state(
        &self,
        checkpoint: &Checkpoint,
        workers: usize,
    ) -> Result<RunState, CheckpointError> {
        let expected = self.fingerprint();
        if checkpoint.fingerprint != expected {
            return Err(CheckpointError::GraphMismatch {
                expected,
                found: checkpoint.fingerprint,
            });
        }
        if checkpoint.channels.len() != self.chans.len() {
            return Err(CheckpointError::ShapeMismatch {
                what: "channels",
                expected: self.chans.len() as u64,
                found: checkpoint.channels.len() as u64,
            });
        }
        if checkpoint.control_firings.len() != self.nodes.len() {
            return Err(CheckpointError::ShapeMismatch {
                what: "nodes",
                expected: self.nodes.len() as u64,
                found: checkpoint.control_firings.len() as u64,
            });
        }
        for (metric, len) in [
            ("metrics.firings", checkpoint.metrics.firings.len()),
            (
                "metrics.mode_sequences",
                checkpoint.metrics.mode_sequences.len(),
            ),
        ] {
            if len != self.nodes.len() {
                return Err(CheckpointError::Malformed {
                    field: "metrics",
                    detail: format!("{metric} has {len} entries for {} nodes", self.nodes.len()),
                });
            }
        }
        if checkpoint.metrics.tokens_pushed.len() != self.chans.len() {
            return Err(CheckpointError::Malformed {
                field: "metrics",
                detail: format!(
                    "metrics.tokens_pushed has {} entries for {} channels",
                    checkpoint.metrics.tokens_pushed.len(),
                    self.chans.len()
                ),
            });
        }
        if checkpoint.iteration >= self.config.iterations {
            return Err(CheckpointError::NothingToResume {
                iteration: checkpoint.iteration,
                configured: self.config.iterations,
            });
        }

        // The phase the *next* iteration runs under. The checkpointing
        // run never switched to it (its final barrier's done-check
        // pre-empts the switch), so the restore performs the switch:
        // rings are sized to at least this phase's plan.
        let phase = self.phase_of(checkpoint.iteration);
        let plan = &self.plans[phase];
        let mut rings = Vec::with_capacity(self.chans.len());
        for (i, info) in self.chans.iter().enumerate() {
            let snap = &checkpoint.channels[i];
            let capacity = (plan.capacities[i] as usize)
                .max(snap.capacity as usize)
                .max(snap.contents.len())
                .max(1);
            let ring = match (&snap.contents, info.is_control) {
                (ChannelContents::Data(tokens), false) => {
                    let ring = RingBuffer::new(info.label.clone(), capacity);
                    for token in tokens {
                        ring.push(token.clone())
                            .expect("capacity covers checkpointed contents");
                    }
                    ChannelRing::Data(ring)
                }
                (ChannelContents::Control(modes), true) => {
                    let ring = RingBuffer::new(info.label.clone(), capacity);
                    for mode in modes {
                        ring.push(mode.clone())
                            .expect("capacity covers checkpointed contents");
                    }
                    ChannelRing::Control(ring)
                }
                _ => {
                    return Err(CheckpointError::Malformed {
                        field: "channels",
                        detail: format!(
                            "channel {i} ({}) kind disagrees with the graph",
                            info.label
                        ),
                    })
                }
            };
            rings.push(ring);
        }

        let nodes: Vec<NodeRunState> = (0..self.nodes.len())
            .map(|n| {
                let ns = NodeRunState::default();
                ns.budget.store(plan.counts[n], Ordering::Relaxed);
                ns.fired_total
                    .store(checkpoint.metrics.firings[n], Ordering::Relaxed);
                ns.control_firings
                    .store(checkpoint.control_firings[n], Ordering::Relaxed);
                ns
            })
            .collect();

        // Replay the rebind event the skipped plan switch would have
        // recorded, so the restored run's rebind log is byte-identical
        // to an uninterrupted run's.
        let mut rebinds = checkpoint.metrics.rebinds.clone();
        if checkpoint.iteration > 0 && phase != self.phase_of(checkpoint.iteration - 1) {
            let capacities = rings
                .iter()
                .map(|c| match c {
                    ChannelRing::Data(ring) => ring.capacity() as u64,
                    ChannelRing::Control(ring) => ring.capacity() as u64,
                })
                .collect();
            rebinds.push(RebindEvent {
                iteration: checkpoint.iteration,
                binding: plan.binding.clone(),
                counts: plan.counts.clone(),
                capacities,
            });
        }

        let park = ParkInner {
            error: None,
            done: false,
            deadline_selections: checkpoint.metrics.deadline_selections.clone(),
        };
        self.beacon.run_started();
        Ok(RunState {
            rings,
            nodes,
            tokens_pushed: checkpoint
                .metrics
                .tokens_pushed
                .iter()
                .map(|&t| AtomicU64::new(t))
                .collect(),
            selected: (0..self.chans.len())
                .map(|_| AtomicBool::new(false))
                .collect(),
            plan: AtomicUsize::new(phase),
            remaining_iter: AtomicU64::new(plan.total_per_iter),
            iteration: AtomicU64::new(checkpoint.iteration),
            in_flight: AtomicUsize::new(0),
            halt: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            deadline_misses: AtomicU64::new(checkpoint.metrics.deadline_misses),
            vote_failures: AtomicU64::new(checkpoint.metrics.vote_failures),
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::with_capacity(self.nodes.len() + 1)))
                .collect(),
            // Per-worker tallies restart at zero: the restoring pool
            // may have a different worker count, so the partial run's
            // per-worker split is not meaningful here (the per-node
            // `fired_total` carries the cross-restart truth).
            worker_firings: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            worker_steals: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            mode_log: checkpoint
                .metrics
                .mode_sequences
                .iter()
                .map(|modes| Mutex::new(modes.clone()))
                .collect(),
            rebinds: Mutex::new(rebinds),
            arena_hits: AtomicU64::new(checkpoint.metrics.arena_hits),
            arena_misses: AtomicU64::new(checkpoint.metrics.arena_misses),
            arena_recycled: AtomicU64::new(checkpoint.metrics.arena_recycled),
            arena_retired: AtomicU64::new(checkpoint.metrics.arena_retired),
            trace_job: self.config.trace_tag,
            park: Mutex::new(park),
            cond: Condvar::new(),
        })
    }

    /// The active tracer, or `None` when tracing costs nothing: the
    /// instrumentation sites branch on this, so with no tracer
    /// installed the cost is a pointer null-check, and with a disabled
    /// tracer one `Relaxed` load plus a branch.
    #[inline]
    pub(crate) fn trace(&self) -> Option<&Tracer> {
        match &self.config.tracer {
            Some(tracer) if tracer.is_enabled() => Some(tracer),
            _ => None,
        }
    }

    /// The shared worker loop. Returns `true` when the worker *stood
    /// down* from a granularity-collapsed run (rather than the run
    /// halting): the pool gives such a worker's participation slot
    /// back so it can serve other jobs — and be re-claimed if the cost
    /// estimate later recovers.
    pub(crate) fn worker_loop(
        &self,
        state: &RunState,
        me: usize,
        registry: &KernelRegistry,
        start: Instant,
    ) -> bool {
        let real_time = matches!(self.config.clock_mode, ClockMode::RealTime { .. });
        let affinity = self.config.placement.is_affinity();
        let mut scratch = FireScratch::default();
        // Consecutive empty hunts; under affinity placement, crossing
        // the boundary (foreign-queue steals, foreign-node scan fires)
        // requires `starved >= AFFINITY_STEAL_THRESHOLD`.
        let mut starved: u32 = 0;
        let stood_down = loop {
            if state.halt.load(Ordering::SeqCst) {
                break false;
            }
            // 1. Real-time clock ticks that are due fire immediately.
            if let ClockMode::RealTime { time_unit } = &self.config.clock_mode {
                if self.fire_due_clock(state, me, start, *time_unit, &mut scratch) {
                    continue;
                }
            }
            // 2. Granularity backoff: when firings are measured to be
            //    too cheap to distribute, secondary workers stand down
            //    and worker 0 runs the graph alone — on fine-grained
            //    graphs the claim path is cheaper than the coordination
            //    it would take to share it. Standing down means
            //    *returning*: on a multi-job pool the thread goes back
            //    to the hunt and serves other queued jobs instead of
            //    napping until this one ends (worker 0 alone finishes
            //    the run — any participant subset makes progress), and
            //    the freed slot can be re-claimed should the estimate
            //    recover. Never in real-time mode: there kernels can
            //    block on wall-clock work that cheap control firings
            //    would average into invisibility, and `run` promises
            //    real-time runs the full pool.
            if me != 0 && !real_time && self.fine_grained() {
                break true;
            }
            // The epoch is captured before looking for work so that a
            // completion racing with the hunt below is detectable when
            // parking.
            let epoch = state.epoch.load(Ordering::SeqCst);
            let steal_ok = !affinity || starved >= AFFINITY_STEAL_THRESHOLD;
            // 3. Ready-queue hint: own queue first; foreign queues only
            //    when stealing is allowed.
            if let Some((node, stolen)) = self.next_hint(state, me, steal_ok) {
                if self.try_fire(
                    state,
                    me,
                    node,
                    stolen,
                    registry,
                    start,
                    real_time,
                    &mut scratch,
                ) {
                    starved = 0;
                }
                continue;
            }
            // 4. Fallback scan: own (home) nodes always; every node
            //    once stealing is allowed.
            let workers = state.queues.len();
            let fired = self.scan_order.iter().any(|&node| {
                if !steal_ok && !self.is_home(state, node, me, workers) {
                    return false;
                }
                self.try_fire(
                    state,
                    me,
                    node,
                    false,
                    registry,
                    start,
                    real_time,
                    &mut scratch,
                )
            });
            if fired {
                starved = 0;
                continue;
            }
            starved = starved.saturating_add(1);
            if !steal_ok {
                // Not yet starved enough to cross the affinity
                // boundary: yield and hunt again instead of parking —
                // the park path's stall verdict requires a full scan,
                // which this hunt deliberately was not.
                std::thread::yield_now();
                continue;
            }
            // 5. Nothing claimable anywhere: park (or report a stall).
            self.park(state, me, epoch, start);
        };
        state.flush_arena(scratch.arena.stats());
        stood_down
    }

    /// Whether `node`'s home worker is `me` under the active plan's
    /// affinity mapping (always true under work stealing, where every
    /// worker is at home everywhere).
    fn is_home(&self, state: &RunState, node: usize, me: usize, workers: usize) -> bool {
        let home = &self.plans[state.plan.load(Ordering::Relaxed)].home;
        if home.is_empty() {
            return true;
        }
        home[node] % workers.max(1) == me
    }

    /// Whether the sampled firing cost says this graph's firings are
    /// too cheap to be worth distributing across workers. The estimate
    /// is an EWMA, so a few dozen samples of a newly heavy (or newly
    /// cheap) registry flip the verdict even after a long history.
    /// `pub(crate)`: the pool's job hunt skips collapsed jobs that
    /// already have a participant.
    pub(crate) fn fine_grained(&self) -> bool {
        self.telemetry.fine_grained()
    }

    /// Records one firing-cost sample into the shared telemetry.
    fn record_cost_sample(&self, sample_ns: u64) {
        self.telemetry.record(sample_ns);
    }

    /// The de-synchronised single-worker loop (Virtual clocks only):
    /// the same claim → execute → publish pipeline as
    /// [`Executor::worker_loop`], with none of the cross-worker
    /// machinery — no claim CAS, no in-flight bracketing, no
    /// epoch/wake traffic, no ready queues. Token streams are
    /// identical by the determinacy argument; only the schedule
    /// differs.
    pub(crate) fn run_single(&self, state: &RunState, registry: &KernelRegistry, start: Instant) {
        let mut scratch = FireScratch {
            sample_mask: 63,
            ..FireScratch::default()
        };
        'run: loop {
            if state.halt.load(Ordering::Relaxed) {
                break 'run;
            }
            let mut progressed = false;
            for &node in &self.scan_order {
                // Keep firing the same node while it stays claimable:
                // its rings and rate tables are hot.
                while let Some(claim) = self.try_claim_node(state, node, false, &mut scratch) {
                    progressed = true;
                    if let Err(error) =
                        self.execute_timed(state, claim, registry, start, 0, &mut scratch)
                    {
                        self.fail(state, error);
                        break 'run;
                    }
                    // Plain load + store instead of `fetch_*`: this
                    // thread is the only writer of every one of these
                    // counters in the single-worker regime, and the
                    // metrics readers only look after the run joins.
                    // Dropping the four lock-prefixed RMWs saves a
                    // measurable slice of the per-firing overhead.
                    let ns = &state.nodes[node];
                    let budget = ns.budget.load(Ordering::Relaxed);
                    ns.budget.store(budget - 1, Ordering::Relaxed);
                    let fired = ns.fired_total.load(Ordering::Relaxed);
                    ns.fired_total.store(fired + 1, Ordering::Relaxed);
                    let mine = state.worker_firings[0].load(Ordering::Relaxed);
                    state.worker_firings[0].store(mine + 1, Ordering::Relaxed);
                    let left = state.remaining_iter.load(Ordering::Relaxed);
                    state.remaining_iter.store(left - 1, Ordering::Relaxed);
                    if left == 1 {
                        self.iteration_barrier(state, 0, &mut scratch.arena);
                        if state.halt.load(Ordering::Relaxed) {
                            break 'run;
                        }
                    }
                }
            }
            if !progressed {
                // A full scan fired nothing and nothing can be in
                // flight: the graph is stalled.
                let error = self.stall_error(state);
                self.fail(state, error);
                break 'run;
            }
        }
        state.flush_arena(scratch.arena.stats());
    }

    /// Parks a scoped secondary that stood down from a fine-grained
    /// run until the stall timeout (or a halt) — after which the
    /// caller re-enters [`Engine::worker_loop`], rejoining the run if
    /// the cost estimate recovered. Never reports a stall: the worker
    /// did not scan for work, so it has no evidence; worker 0 never
    /// stands down and remains the stall detector. (Stand-down is
    /// Virtual-clock-only, so no real-time tick can be pending.)
    fn standdown_nap(&self, state: &RunState) {
        state.parked.fetch_add(1, Ordering::SeqCst);
        let guard = state.park.lock().expect("park lock");
        if !state.halt.load(Ordering::SeqCst) {
            drop(
                state
                    .cond
                    .wait_timeout(guard, self.config.stall_timeout)
                    .expect("park lock")
                    .0,
            );
        }
        state.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Pops a ready hint: own queue front first, then — when `steal_ok`
    /// — steal from the other workers' queues. The second tuple field
    /// reports whether the hint was stolen.
    ///
    /// Steals take *half* the victim's queue, not one entry: per-hint
    /// ping-pong between two workers would serialise them on the queue
    /// locks, while batch stealing lets both drain local work and only
    /// meet again every ~k firings.
    fn next_hint(&self, state: &RunState, me: usize, steal_ok: bool) -> Option<(usize, bool)> {
        if let Some(node) = state.queues[me].lock().expect("queue lock").pop_front() {
            state.nodes[node].queued.store(false, Ordering::Release);
            return Some((node, false));
        }
        if !steal_ok {
            return None;
        }
        let workers = state.queues.len();
        for offset in 1..workers {
            let victim = (me + offset) % workers;
            let mut stolen = {
                let mut victim_queue = state.queues[victim].lock().expect("queue lock");
                let keep = victim_queue.len() / 2;
                victim_queue.split_off(keep)
            };
            if let Some(node) = stolen.pop_front() {
                state.nodes[node].queued.store(false, Ordering::Release);
                if !stolen.is_empty() {
                    // The rest stays marked `queued`: it moved into this
                    // worker's queue, it did not leave the queue system.
                    state.queues[me]
                        .lock()
                        .expect("queue lock")
                        .append(&mut stolen);
                }
                return Some((node, true));
            }
        }
        None
    }

    /// Attempts to claim and run one firing of `node`. Returns `true`
    /// when a firing was executed (successfully or not — errors halt
    /// the run through the park state). `stolen` marks a hint popped
    /// from a foreign queue, for the per-worker steal metric.
    #[allow(clippy::too_many_arguments)]
    fn try_fire(
        &self,
        state: &RunState,
        me: usize,
        node: usize,
        stolen: bool,
        registry: &KernelRegistry,
        start: Instant,
        real_time: bool,
        scratch: &mut FireScratch,
    ) -> bool {
        let info = &self.nodes[node];
        if real_time && info.is_clock {
            return false;
        }
        let ns = &state.nodes[node];
        if ns.budget.load(Ordering::Acquire) == 0 {
            return false;
        }
        // `in_flight` brackets the whole attempt (not just held claims)
        // so the stall detector in `park` cannot observe a moment where
        // a worker is about to fire yet nothing appears active.
        state.in_flight.fetch_add(1, Ordering::SeqCst);
        let fired = if ns
            .claimed
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            false
        } else {
            match self.try_claim_node(state, node, real_time, scratch) {
                None => {
                    ns.claimed.store(false, Ordering::Release);
                    false
                }
                Some(claim) => {
                    // A boundary crossing: a hint stolen from a foreign
                    // queue, or (under affinity) a foreign-home node
                    // fired by a starved worker.
                    if stolen || !self.is_home(state, node, me, state.queues.len()) {
                        state.worker_steals[me].fetch_add(1, Ordering::Relaxed);
                        if let Some(tracer) = self.trace() {
                            tracer.event(me, EventKind::Steal, state.trace_job, node as u64, 0, 0);
                        }
                    }
                    match self.execute_timed(state, claim, registry, start, me, scratch) {
                        Ok(()) => self.finish_firing(state, me, node, scratch),
                        Err(error) => self.fail(state, error),
                    }
                    true
                }
            }
        };
        state.in_flight.fetch_sub(1, Ordering::SeqCst);
        fired
    }

    /// Executes a claimed firing and publishes its outputs. One in
    /// eight firings is timed to feed the granularity heuristic —
    /// timing every firing would itself be a measurable per-firing
    /// cost. Shared by the multi-worker and single-worker paths so the
    /// telemetry feeding [`Executor::fine_grained`] cannot diverge
    /// between them.
    ///
    /// Tracing rides the same cadence: sampled firings pay two clock
    /// reads (a fresh timestamp plus the duration) and feed the shared
    /// `firing_ns` histogram that every worker contends on; the seven
    /// firings in between still emit their event — the flight-recorder
    /// counts stay exact — but as a zero-width slice stamped with the
    /// worker's cached timestamp. The merged log is timestamp-sorted,
    /// so coarse stamps remain monotone per lane.
    fn execute_timed(
        &self,
        state: &RunState,
        claim: Claim,
        registry: &KernelRegistry,
        start: Instant,
        me: usize,
        scratch: &mut FireScratch,
    ) -> Result<(), RuntimeError> {
        scratch.fired += 1;
        let node = claim.node;
        let plan_idx = claim.plan;
        let sampled = scratch.fired & scratch.sample_mask == 1;
        let tracer = self.trace();
        if sampled {
            if let Some(tracer) = tracer {
                scratch.ts_ns = tracer.now_ns();
            }
        }
        let timer = (sampled && tracer.is_none()).then(Instant::now);
        let mut tokens: u64 = 0;
        let outcome = self
            .execute(claim, registry, scratch)
            .and_then(|(claim, mut ctx)| {
                if tracer.is_some() {
                    // Data tokens this firing is about to publish (the
                    // slabs are drained into the rings by the publish).
                    tokens = ctx.outputs.iter().map(|o| o.tokens.len() as u64).sum();
                }
                let published =
                    self.publish_outputs(state, &claim, &mut ctx, start, me, &mut scratch.scalars);
                if published.is_ok() {
                    // Return the firing's slabs (consumed input tokens
                    // are dropped here; output slabs were drained into
                    // the rings), park the port entries with their
                    // channel labels still attached, and keep the
                    // emptied containers — the next firing rebuilds
                    // the whole context without touching the allocator
                    // or an `Arc` refcount.
                    scratch.node_ports(node);
                    let FireScratch { arena, ports, .. } = &mut *scratch;
                    let parked = &mut ports[node];
                    for mut input in ctx.inputs.drain(..) {
                        arena.recycle(std::mem::take(&mut input.tokens));
                        parked.inputs.push(input);
                    }
                    for mut output in ctx.outputs.drain(..) {
                        arena.recycle(std::mem::take(&mut output.tokens));
                        parked.outputs.push(output);
                    }
                    parked.name = Some(ctx.node);
                    scratch.spare_inputs = ctx.inputs;
                    scratch.spare_outputs = ctx.outputs;
                }
                published
            });
        if let Some(tracer) = tracer {
            let (ts_ns, dur) = if sampled {
                let started = scratch.ts_ns;
                let ended = tracer.now_ns();
                let dur = ended.saturating_sub(started);
                self.record_cost_sample(dur);
                tracer.histograms().firing_ns.record(dur);
                // Later unsampled firings stamp "after this one".
                scratch.ts_ns = ended;
                (started, dur)
            } else {
                (scratch.ts_ns, 0)
            };
            tracer.event_at(
                ts_ns,
                me,
                EventKind::Firing,
                state.trace_job,
                node as u64,
                plan_idx as u64,
                TraceEvent::pack_firing(dur, tokens),
            );
            if sampled {
                // Arena traffic rides the same 1-in-8 cadence: one
                // event per counter that moved since the last sampled
                // firing, stamped with the cached timestamp.
                let stats = scratch.arena.stats();
                if stats.recycled > scratch.traced.recycled {
                    tracer.event_at(
                        scratch.ts_ns,
                        me,
                        EventKind::SlabRecycle,
                        state.trace_job,
                        node as u64,
                        0,
                        stats.recycled - scratch.traced.recycled,
                    );
                }
                if stats.misses > scratch.traced.misses {
                    tracer.event_at(
                        scratch.ts_ns,
                        me,
                        EventKind::SlabMiss,
                        state.trace_job,
                        node as u64,
                        0,
                        stats.misses - scratch.traced.misses,
                    );
                }
                scratch.traced = stats;
            }
        } else if let Some(timer) = timer {
            self.record_cost_sample(timer.elapsed().as_nanos() as u64);
        }
        outcome
    }

    /// Attempts to claim one firing of `node`, consuming its inputs.
    /// Requires the node's `claimed` flag to be held by the caller.
    ///
    /// No rollback is ever needed: while the claim is held this worker
    /// is the unique consumer of the input rings (tokens only
    /// accumulate) and the unique producer of the output rings (free
    /// space only grows), so the checks below cannot be invalidated
    /// between check and commit.
    fn try_claim_node(
        &self,
        state: &RunState,
        node: usize,
        real_time: bool,
        scratch: &mut FireScratch,
    ) -> Option<Claim> {
        let info = &self.nodes[node];
        let ns = &state.nodes[node];
        // The budget gate. Acquire pairs with the barrier's Release
        // republication: a nonzero budget proves the barrier's ring
        // flushes, ring growth and plan switch are visible (a stale
        // zero just retires the attempt). The claim we already hold
        // pairs with the previous holder's release, so the budget can
        // never be a stale value of an *earlier* iteration.
        let remaining = ns.budget.load(Ordering::Acquire);
        if remaining == 0 {
            return None;
        }
        let plan = &self.plans[state.plan.load(Ordering::Relaxed)];
        let ordinal_iter = plan.counts[node] - remaining;

        // 1. Resolve the mode of this firing from the control port.
        let control_need = info
            .control_port
            .map(|cp| plan.cons_rate(cp, ordinal_iter))
            .unwrap_or(0);
        let mode = if control_need > 0 {
            let ring = state.control_ring(info.control_port.expect("need implies port"));
            // All `control_need` tokens must be present (they are
            // popped below); the firing's mode comes from the first.
            if (ring.len() as u64) < control_need {
                return None;
            }
            ring.peek_clone().expect("length checked")
        } else {
            Mode::WaitAll
        };

        // 2. Check the availability of the mode-selected data inputs.
        let port_count = info.data_inputs.len();
        let mut deadline_missed = false;
        let mut hp_choice = None;
        match &mode {
            Mode::HighestPriority => {
                let mut best: Option<(u32, usize)> = None;
                for (port, &chan) in info.data_inputs.iter().enumerate() {
                    let rate = plan.cons_rate(chan, ordinal_iter);
                    if (state.data_ring(chan).len() as u64) < rate {
                        continue;
                    }
                    let priority = self.chans[chan].priority;
                    if best.is_none_or(|(b, _)| priority > b) {
                        best = Some((priority, port));
                    }
                }
                match best {
                    Some((_, port)) => hp_choice = Some(port),
                    None if port_count == 0 => {}
                    None if real_time && info.is_transaction && info.control_from_clock => {
                        // Deadline semantics: the clock token forces the
                        // firing even though no result is ready yet.
                        deadline_missed = true;
                    }
                    None => return None,
                }
            }
            m => {
                for (port, &chan) in info.data_inputs.iter().enumerate() {
                    if !m.selects(port, port_count) {
                        continue;
                    }
                    let rate = plan.cons_rate(chan, ordinal_iter);
                    if (state.data_ring(chan).len() as u64) < rate {
                        return None;
                    }
                }
            }
        }

        // 3. Output space must be free on every output ring.
        for &chan in &info.data_outputs {
            let rate = plan.prod_rate(chan, ordinal_iter);
            if (state.data_ring(chan).free() as u64) < rate {
                return None;
            }
        }
        for &chan in &info.control_outputs {
            let rate = plan.prod_rate(chan, ordinal_iter);
            if (state.control_ring(chan).free() as u64) < rate {
                return None;
            }
        }

        // 4. Commit: pop the control tokens and the selected inputs.
        if control_need > 0 {
            let ring = state.control_ring(info.control_port.expect("need implies port"));
            for _ in 0..control_need {
                ring.pop();
            }
        }
        let controlled = info.control_port.is_some();
        // The port-entry container, the entries themselves (with their
        // channel-label `Arc`s) and the token slabs all come out of the
        // worker's recycling state: nothing here touches the global
        // allocator — or an `Arc` refcount — once the caches are warm.
        let mut inputs = std::mem::take(&mut scratch.spare_inputs);
        debug_assert!(inputs.is_empty());
        scratch.node_ports(node);
        let FireScratch { arena, ports, .. } = scratch;
        let parked = &mut ports[node];
        let mut take = |port: usize, chan: usize| {
            let rate = plan.cons_rate(chan, ordinal_iter) as usize;
            if controlled {
                state.selected[chan].store(true, Ordering::Relaxed);
            }
            let mut slab = arena.take(rate);
            state.data_ring(chan).pop_into(rate, &mut slab);
            let entry = match parked.inputs.iter().position(|p| p.port == port) {
                Some(at) => {
                    let mut entry = parked.inputs.swap_remove(at);
                    entry.tokens = slab;
                    entry
                }
                None => PortInput {
                    port,
                    priority: self.chans[chan].priority,
                    channel: self.chans[chan].label.clone(),
                    tokens: slab,
                },
            };
            inputs.push(entry);
        };
        match &mode {
            Mode::HighestPriority => {
                if let Some(port) = hp_choice {
                    take(port, info.data_inputs[port]);
                }
            }
            m => {
                for (port, &chan) in info.data_inputs.iter().enumerate() {
                    if m.selects(port, port_count) {
                        take(port, chan);
                    }
                }
            }
        }

        Some(Claim {
            node,
            ordinal_iter,
            ordinal_total: ns.fired_total.load(Ordering::Relaxed),
            plan: state.plan.load(Ordering::Relaxed),
            mode,
            inputs,
            deadline_missed,
            record_deadline: info.is_transaction && info.control_from_clock && control_need > 0,
        })
    }

    /// Runs the kernel computation for a claim. Lock-free: only the
    /// claim holder touches the firing's data.
    fn execute(
        &self,
        mut claim: Claim,
        registry: &KernelRegistry,
        scratch: &mut FireScratch,
    ) -> Result<(Claim, FiringContext), RuntimeError> {
        let info = &self.nodes[claim.node];
        let plan = &self.plans[claim.plan];
        let mut outputs = std::mem::take(&mut scratch.spare_outputs);
        debug_assert!(outputs.is_empty());
        scratch.node_ports(claim.node);
        let FireScratch { arena, ports, .. } = scratch;
        let parked = &mut ports[claim.node];
        outputs.extend(info.data_outputs.iter().enumerate().map(|(port, &chan)| {
            let rate = plan.prod_rate(chan, claim.ordinal_iter);
            let tokens = arena.take(rate as usize);
            match parked.outputs.iter().position(|p| p.port == port) {
                Some(at) => {
                    let mut entry = parked.outputs.swap_remove(at);
                    entry.rate = rate;
                    entry.tokens = tokens;
                    entry
                }
                None => PortOutput {
                    port,
                    channel: self.chans[chan].label.clone(),
                    rate,
                    tokens,
                },
            }
        }));
        let mut ctx = FiringContext {
            node: parked.name.take().unwrap_or_else(|| info.name.clone()),
            ordinal: claim.ordinal_total,
            mode: claim.mode.clone(),
            inputs: std::mem::take(&mut claim.inputs),
            outputs,
            deadline_missed: claim.deadline_missed,
            vote_failed: false,
            emitted_mode: None,
        };
        match registry.get(&info.name) {
            Some(behavior) => behavior.fire(&mut ctx)?,
            None if info.is_select_duplicate => fire_select_duplicate(&mut ctx),
            None if info.is_transaction => fire_transaction(&mut ctx, info.votes_required),
            None => fire_default(&mut ctx),
        }
        Ok((claim, ctx))
    }

    /// Publishes the outputs of a finished firing onto its rings and
    /// records its metrics. Still requires the node claim.
    fn publish_outputs(
        &self,
        state: &RunState,
        claim: &Claim,
        ctx: &mut FiringContext,
        start: Instant,
        me: usize,
        scalars: &mut Vec<i64>,
    ) -> Result<(), RuntimeError> {
        let node = claim.node;
        let info = &self.nodes[node];
        let plan = &self.plans[claim.plan];
        let ns = &state.nodes[node];

        for (idx, &chan) in info.data_outputs.iter().enumerate() {
            let rate = plan.prod_rate(chan, claim.ordinal_iter);
            let produced = &mut ctx.outputs[idx].tokens;
            if produced.len() as u64 != rate {
                return Err(RuntimeError::RateMismatch {
                    node: info.name.to_string(),
                    channel: self.chans[chan].label.to_string(),
                    expected: rate,
                    got: produced.len() as u64,
                });
            }
            // The whole slab moves into the ring as one batch.
            state.data_ring(chan).push_from(produced)?;
            // Load + store, not `fetch_add`: a channel's counter is only
            // ever advanced by its unique producing node, and firings of
            // one node are serialised by the claim's release/acquire
            // chain, so the RMW's atomicity buys nothing here.
            let pushed = state.tokens_pushed[chan].load(Ordering::Relaxed);
            state.tokens_pushed[chan].store(pushed + rate, Ordering::Relaxed);
        }

        if !info.control_outputs.is_empty() {
            // Data-dependent control: the mode comes from the firing's
            // consumed values (through the selector), or from the
            // behaviour itself when it called `set_mode`.
            let mode = match ctx.emitted_mode.take() {
                Some(mode) => mode,
                None => {
                    scalars.clear();
                    ctx.input_scalars_into(scalars);
                    self.selector
                        .select(ns.control_firings.load(Ordering::Relaxed), scalars)
                }
            };
            for &chan in &info.control_outputs {
                let rate = plan.prod_rate(chan, claim.ordinal_iter);
                state.control_ring(chan).push_clones(&mode, rate as usize)?;
                let pushed = state.tokens_pushed[chan].load(Ordering::Relaxed);
                state.tokens_pushed[chan].store(pushed + rate, Ordering::Relaxed);
            }
            if let Some(tracer) = self.trace() {
                tracer.event(
                    me,
                    EventKind::ModeEmit,
                    state.trace_job,
                    node as u64,
                    mode_code(&mode) as u64,
                    ns.control_firings.load(Ordering::Relaxed),
                );
            }
            state.mode_log[node]
                .lock()
                .expect("mode log lock")
                .push(mode);
        }
        if info.is_control_actor {
            ns.control_firings.fetch_add(1, Ordering::Relaxed);
        }

        if claim.record_deadline {
            let selected = ctx.inputs.first();
            let selection = DeadlineSelection {
                transaction: NodeId(node),
                selected_channel: selected.map(|p| ChannelId(info.data_inputs[p.port])),
                selected_priority: selected.map(|p| p.priority),
                at: start.elapsed(),
            };
            state
                .park
                .lock()
                .expect("park lock")
                .deadline_selections
                .push(selection);
        }
        if ctx.deadline_missed {
            state.deadline_misses.fetch_add(1, Ordering::Relaxed);
            if let Some(tracer) = self.trace() {
                tracer.event(
                    me,
                    EventKind::DeadlineMiss,
                    state.trace_job,
                    node as u64,
                    0,
                    0,
                );
            }
        }
        if ctx.vote_failed {
            state.vote_failures.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Commits a published firing: advances the node's counters,
    /// releases the claim, enqueues the affected neighbours, handles
    /// the iteration barrier, and signals progress.
    fn finish_firing(&self, state: &RunState, me: usize, node: usize, scratch: &mut FireScratch) {
        let ns = &state.nodes[node];
        // The budget decrement precedes the claim release: the next
        // claimant's successful CAS pairs with the Release below, so it
        // observes this decrement (never a stale larger budget).
        ns.budget.fetch_sub(1, Ordering::Release);
        ns.fired_total.fetch_add(1, Ordering::Relaxed);
        state.worker_firings[me].fetch_add(1, Ordering::Relaxed);
        ns.claimed.store(false, Ordering::Release);
        let surplus = self.enqueue_candidates(state, me, node);
        if state.remaining_iter.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.iteration_barrier(state, me, &mut scratch.arena);
        }
        self.signal_progress(state, surplus);
    }

    /// Enqueues the nodes whose readiness may have changed
    /// (deduplicated through the per-node `queued` flag). Under work
    /// stealing every hint lands on this worker's own queue; under
    /// affinity placement each hint is routed to its *home worker's*
    /// queue, so placement follows the analysis-side mapping instead of
    /// whichever worker happened to complete the neighbour.
    ///
    /// Returns `true` when the hints exceed what this worker will
    /// immediately consume itself — more than one hint on its own
    /// queue, or any hint routed to a foreign home — the signal that
    /// waking a parked peer is worthwhile.
    fn enqueue_candidates(&self, state: &RunState, me: usize, node: usize) -> bool {
        let real_time = matches!(self.config.clock_mode, ClockMode::RealTime { .. });
        let workers = state.queues.len();
        let home = &self.plans[state.plan.load(Ordering::Relaxed)].home;
        let mut own_hints = 0usize;
        let mut foreign_hints = false;
        // The common case routes every hint to one queue; holding the
        // guard across the loop would serialise against that queue's
        // owner, so each push takes the lock for exactly one entry.
        for &cand in &self.nodes[node].neighbors {
            if real_time && self.nodes[cand].is_clock {
                continue;
            }
            if state.nodes[cand].budget.load(Ordering::Relaxed) == 0 {
                continue;
            }
            if state.nodes[cand]
                .queued
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let target = if home.is_empty() {
                me
            } else {
                home[cand] % workers.max(1)
            };
            let mut queue = state.queues[target].lock().expect("queue lock");
            queue.push_back(cand);
            if target == me {
                own_hints = queue.len();
            } else {
                foreign_hints = true;
            }
        }
        foreign_hints || own_hints > 1
    }

    /// When every node has completed its repetition count: flush
    /// rejected channels, apply a pending parameter rebinding, advance
    /// (or finish) the iteration. Runs on the worker that completed the
    /// iteration's last firing — every budget is exhausted (zero), so
    /// no claim can race with the flush, the plan switch or the ring
    /// growth; the `Release` budget republication is what publishes all
    /// of them to the next claimants.
    fn iteration_barrier(&self, state: &RunState, me: usize, arena: &mut SlabArena<Token>) {
        let tracer = self.trace();
        // The iteration index being finished (0-based), for the trace
        // events bracketing the barrier.
        let finishing = state.iteration.load(Ordering::Relaxed);
        if let Some(t) = tracer {
            t.event(
                me,
                EventKind::BarrierEnter,
                state.trace_job,
                0,
                0,
                finishing,
            );
        }
        // Flush data channels whose consuming (controlled) port was
        // rejected for the whole iteration back to their initial state.
        for (i, info) in self.chans.iter().enumerate() {
            if info.is_control {
                continue;
            }
            let consumed = state.selected[i].swap(false, Ordering::Relaxed);
            if !info.target_controlled || consumed {
                continue;
            }
            let ring = state.data_ring(i);
            ring.clear();
            for _ in 0..info.initial_tokens {
                ring.push(Token::Unit)
                    .expect("capacity covers initial tokens");
            }
        }
        self.beacon.barrier();
        let finished = state.iteration.fetch_add(1, Ordering::Relaxed) + 1;
        if finished >= self.config.iterations {
            state.park.lock().expect("park lock").done = true;
            state.halt.store(true, Ordering::SeqCst);
            state.cond.notify_all();
        } else {
            // Rebind: switch the plan and grow any ring the new phase
            // needs larger. Rate consistency returns every channel to
            // its initial occupancy at the boundary, so growth moves at
            // most `initial_tokens` live elements per ring.
            let next = self.phase_of(finished);
            if next != state.plan.load(Ordering::Relaxed) {
                let plan = &self.plans[next];
                for (i, &cap) in plan.capacities.iter().enumerate() {
                    let old = match &state.rings[i] {
                        // A grown data ring's retired slot array goes
                        // into this worker's arena as an ordinary slab
                        // instead of back to the allocator.
                        ChannelRing::Data(ring) => {
                            let (old, retired) = ring.grow_reclaim(cap as usize);
                            if let Some(storage) = retired {
                                arena.recycle(storage);
                            }
                            old
                        }
                        ChannelRing::Control(ring) => ring.grow(cap as usize),
                    };
                    if old < cap as usize {
                        if let Some(t) = tracer {
                            t.event(
                                me,
                                EventKind::RingGrow,
                                state.trace_job,
                                i as u64,
                                old as u64,
                                cap,
                            );
                        }
                    }
                }
                state.plan.store(next, Ordering::Relaxed);
                if let Some(t) = tracer {
                    t.event(
                        me,
                        EventKind::PlanSwitch,
                        state.trace_job,
                        next as u64,
                        0,
                        finished,
                    );
                }
                let capacities = state
                    .rings
                    .iter()
                    .map(|c| match c {
                        ChannelRing::Data(ring) => ring.capacity() as u64,
                        ChannelRing::Control(ring) => ring.capacity() as u64,
                    })
                    .collect();
                state
                    .rebinds
                    .lock()
                    .expect("rebind lock")
                    .push(RebindEvent {
                        iteration: finished,
                        binding: plan.binding.clone(),
                        counts: plan.counts.clone(),
                        capacities,
                    });
            }
            let plan = &self.plans[self.phase_of(finished)];
            state
                .remaining_iter
                .store(plan.total_per_iter, Ordering::Relaxed);
            for (n, ns) in state.nodes.iter().enumerate() {
                ns.budget.store(plan.counts[n], Ordering::Release);
            }
        }
        if let Some(t) = tracer {
            t.event(
                me,
                EventKind::BarrierExit,
                state.trace_job,
                0,
                (finished >= self.config.iterations) as u64,
                finishing,
            );
        }
    }

    /// Publishes progress: bumps the epoch unconditionally (the stall
    /// protocol depends on it) and wakes one parked worker when there
    /// is surplus work. Completion chains with no surplus continue on
    /// the completing worker alone — waking peers for work this worker
    /// is about to take itself only burns context switches (ruinous on
    /// few-core hosts); parked workers additionally rescan on their
    /// stall timeout, so a skipped wake-up can delay stealing but never
    /// block progress.
    fn signal_progress(&self, state: &RunState, surplus: bool) {
        state.epoch.fetch_add(1, Ordering::SeqCst);
        if surplus && !self.fine_grained() && state.parked.load(Ordering::SeqCst) > 0 {
            // Passing through the mutex pairs with a parker that checked
            // the epoch but has not yet blocked on the condvar.
            drop(state.park.lock().expect("park lock"));
            if self.config.placement.is_affinity() {
                // A hint may have been routed to a specific parked home
                // worker; notify_one could wake a different one, which
                // would yield through its starvation window before
                // crossing the boundary. Waking everyone lets the home
                // worker claim its hint immediately.
                state.cond.notify_all();
            } else {
                state.cond.notify_one();
            }
        }
    }

    /// Records a fatal error and halts the pool.
    pub(crate) fn fail(&self, state: &RunState, error: RuntimeError) {
        let mut park = state.park.lock().expect("park lock");
        if park.error.is_none() {
            park.error = Some(error);
        }
        state.halt.store(true, Ordering::SeqCst);
        drop(park);
        state.cond.notify_all();
    }

    /// Cancels the run: like [`Engine::fail`] with
    /// [`RuntimeError::Cancelled`], except that a run which already
    /// *completed* keeps its outcome — `done` is set (under the same
    /// park lock) by the final iteration barrier, so a cancellation
    /// racing normal completion can never turn a finished run's
    /// `Ok(Metrics)` into `Err(Cancelled)`, however late the metrics
    /// collection itself happens.
    pub(crate) fn cancel_run(&self, state: &RunState) {
        let mut park = state.park.lock().expect("park lock");
        if park.done {
            return;
        }
        if park.error.is_none() {
            park.error = Some(RuntimeError::Cancelled);
        }
        state.halt.store(true, Ordering::SeqCst);
        drop(park);
        state.cond.notify_all();
    }

    /// Parks an idle worker — or reports a stall.
    ///
    /// Stall soundness: `epoch` was captured before the failed hunt for
    /// work. If it is still unchanged here, no firing has completed
    /// since, so the hunt's "nothing claimable" verdict still describes
    /// the current state; if additionally `in_flight == 0`, no worker
    /// is attempting or holding a claim (attempts bracket `in_flight`),
    /// and if no real-time clock tick is pending either, the graph can
    /// never make progress again.
    fn park(&self, state: &RunState, me: usize, epoch: u64, start: Instant) {
        state.parked.fetch_add(1, Ordering::SeqCst);
        let guard = state.park.lock().expect("park lock");
        let stale = state.epoch.load(Ordering::SeqCst) != epoch;
        if !stale && !state.halt.load(Ordering::SeqCst) {
            let next_tick = match &self.config.clock_mode {
                ClockMode::RealTime { time_unit } => self.next_tick_in(state, start, *time_unit),
                ClockMode::Virtual => None,
            };
            if state.in_flight.load(Ordering::SeqCst) == 0 && next_tick.is_none() {
                let mut guard = guard;
                if guard.error.is_none() {
                    guard.error = Some(self.stall_error(state));
                }
                state.halt.store(true, Ordering::SeqCst);
                drop(guard);
                state.cond.notify_all();
            } else {
                let timeout = next_tick.unwrap_or(self.config.stall_timeout);
                let tracer = self.trace();
                if let Some(t) = tracer {
                    t.event(me, EventKind::Park, state.trace_job, 0, 0, 0);
                }
                drop(
                    state
                        .cond
                        .wait_timeout(guard, timeout)
                        .expect("park lock")
                        .0,
                );
                if let Some(t) = tracer {
                    t.event(me, EventKind::Wake, state.trace_job, 0, 0, 0);
                }
            }
        }
        state.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Names of nodes with remaining firings, for stall diagnostics.
    fn blocked_names(&self, state: &RunState) -> Vec<String> {
        self.scan_order
            .iter()
            .filter(|&&n| state.nodes[n].budget.load(Ordering::Relaxed) > 0)
            .map(|&n| self.nodes[n].name.to_string())
            .collect()
    }

    /// Builds the [`RuntimeError::Stalled`] for a proven stall,
    /// recording a [`EventKind::Stall`] marker and attaching the
    /// per-node budget breakdown plus the flight-recorder tail.
    fn stall_error(&self, state: &RunState) -> RuntimeError {
        let iteration = state.iteration.load(Ordering::Relaxed);
        if let Some(tracer) = self.trace() {
            tracer.control_event(EventKind::Stall, state.trace_job, 0, 0, iteration);
        }
        RuntimeError::Stalled {
            blocked: self.blocked_names(state),
            iteration,
            diagnostics: self.stall_diagnostics(state),
        }
    }

    /// Renders the stall post-mortem: one line per node with firings
    /// remaining, then the last [`STALL_DUMP_EVENTS`] flight-recorder
    /// events. The tail is read from the tracer even when recording is
    /// currently disabled — its rings still hold the recent past.
    fn stall_diagnostics(&self, state: &RunState) -> String {
        use std::fmt::Write;
        let plan = &self.plans[state.plan.load(Ordering::Relaxed)];
        let mut out = String::new();
        for &n in &self.scan_order {
            let remaining = state.nodes[n].budget.load(Ordering::Relaxed);
            if remaining > 0 {
                let _ = writeln!(
                    out,
                    "  node {n} ({}): {remaining} of {} firings remaining",
                    self.nodes[n].name, plan.counts[n]
                );
            }
        }
        if let Some(tracer) = &self.config.tracer {
            let tail = tracer.recent(STALL_DUMP_EVENTS);
            if !tail.is_empty() {
                let _ = writeln!(out, "  flight recorder tail ({} events):", tail.len());
                for event in &tail {
                    let _ = writeln!(out, "    {}", event.summary());
                }
            }
        }
        out
    }

    /// The wall-clock instant of real-time clock tick `k` (0-based) of
    /// `node`. Computed in 128-bit nanoseconds: a `Duration * u32`
    /// shortcut would wrap after ~4 G virtual units (minutes to hours
    /// into a fine-grained streaming run).
    fn tick_instant(&self, start: Instant, node: usize, k: u64, unit: Duration) -> Instant {
        let ticks = (k + 1).saturating_mul(self.nodes[node].clock_period);
        let nanos = unit.as_nanos().saturating_mul(ticks as u128);
        let secs = (nanos / 1_000_000_000) as u64;
        let subsec = (nanos % 1_000_000_000) as u32;
        start + Duration::new(secs, subsec)
    }

    /// Time until the earliest pending clock tick, if any clock still
    /// has firings left this iteration.
    fn next_tick_in(&self, state: &RunState, start: Instant, unit: Duration) -> Option<Duration> {
        let now = Instant::now();
        self.clock_nodes
            .iter()
            .filter(|&&n| state.nodes[n].budget.load(Ordering::Relaxed) > 0)
            .map(|&n| {
                let tick = self.tick_instant(
                    start,
                    n,
                    state.nodes[n].fired_total.load(Ordering::Relaxed),
                    unit,
                );
                tick.saturating_duration_since(now)
            })
            .min()
    }

    /// Fires one due real-time clock, if any. Returns `true` when a
    /// clock fired (successfully or not).
    fn fire_due_clock(
        &self,
        state: &RunState,
        me: usize,
        start: Instant,
        unit: Duration,
        scratch: &mut FireScratch,
    ) -> bool {
        let now = Instant::now();
        for &node in &self.clock_nodes {
            let ns = &state.nodes[node];
            if ns.budget.load(Ordering::Acquire) == 0
                || now
                    < self.tick_instant(start, node, ns.fired_total.load(Ordering::Relaxed), unit)
            {
                continue;
            }
            state.in_flight.fetch_add(1, Ordering::SeqCst);
            if ns
                .claimed
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                state.in_flight.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            // Re-check under the claim: another worker may have fired
            // this very tick between the check above and the CAS.
            let remaining = ns.budget.load(Ordering::Acquire);
            let tick = self.tick_instant(start, node, ns.fired_total.load(Ordering::Relaxed), unit);
            let due = remaining > 0 && Instant::now() >= tick;
            let fired = if due {
                if let Some(tracer) = self.trace() {
                    // Tick lateness: how long past its wall-clock
                    // deadline this tick actually fired.
                    tracer
                        .histograms()
                        .deadline_slack_ns
                        .record(Instant::now().saturating_duration_since(tick).as_nanos() as u64);
                }
                let plan_idx = state.plan.load(Ordering::Relaxed);
                let ordinal = self.plans[plan_idx].counts[node] - remaining;
                match self.fire_clock_claimed(state, node, ordinal, plan_idx, me) {
                    Ok(()) => self.finish_firing(state, me, node, scratch),
                    Err(error) => self.fail(state, error),
                }
                true
            } else {
                ns.claimed.store(false, Ordering::Release);
                false
            };
            state.in_flight.fetch_sub(1, Ordering::SeqCst);
            if fired {
                return true;
            }
        }
        false
    }

    /// Emits a real-time clock tick: control tokens carrying the
    /// selector's mode (and unit markers on any data outputs),
    /// consuming nothing — exactly like the virtual-time engine's tick
    /// handling. Requires the node claim.
    fn fire_clock_claimed(
        &self,
        state: &RunState,
        node: usize,
        ordinal: u64,
        plan_idx: usize,
        me: usize,
    ) -> Result<(), RuntimeError> {
        let info = &self.nodes[node];
        let ns = &state.nodes[node];
        let plan = &self.plans[plan_idx];
        // A real-time tick consumes nothing, so a data-dependent
        // selector sees an empty input slice.
        let mode = self
            .selector
            .select(ns.control_firings.load(Ordering::Relaxed), &[]);
        for &chan in &info.control_outputs {
            let rate = plan.prod_rate(chan, ordinal);
            state.control_ring(chan).push_clones(&mode, rate as usize)?;
            state.tokens_pushed[chan].fetch_add(rate, Ordering::Relaxed);
        }
        for &chan in &info.data_outputs {
            let rate = plan.prod_rate(chan, ordinal);
            state
                .data_ring(chan)
                .push_clones(&Token::Unit, rate as usize)?;
            state.tokens_pushed[chan].fetch_add(rate, Ordering::Relaxed);
        }
        if !info.control_outputs.is_empty() {
            if let Some(tracer) = self.trace() {
                tracer.event(
                    me,
                    EventKind::ModeEmit,
                    state.trace_job,
                    node as u64,
                    mode_code(&mode) as u64,
                    ns.control_firings.load(Ordering::Relaxed),
                );
            }
            state.mode_log[node]
                .lock()
                .expect("mode log lock")
                .push(mode);
        }
        ns.control_firings.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;
    use tpdf_core::examples::{figure2_graph, figure4_deadlocked_graph, figure4a_graph};
    use tpdf_core::graph::TpdfGraph;
    use tpdf_core::rate::RateSeq;
    use tpdf_sim::engine::SimulationReport;

    fn binding(p: i64) -> Binding {
        Binding::from_pairs([("p", p)])
    }

    fn sim_reference(graph: &TpdfGraph, config: &RuntimeConfig) -> SimulationReport {
        Simulator::new(graph, config.reference_sim_config())
            .unwrap()
            .run_iterations(config.iterations)
            .unwrap()
    }

    #[test]
    fn figure2_matches_reference_across_thread_counts() {
        let g = figure2_graph();
        for threads in [1usize, 2, 4, 8] {
            let config = RuntimeConfig::new(binding(3))
                .with_threads(threads)
                .with_iterations(4);
            let reference = sim_reference(&g, &config);
            let metrics = Executor::new(&g, config)
                .unwrap()
                .run(&KernelRegistry::new())
                .unwrap();
            assert_eq!(metrics.firings, reference.firings, "threads = {threads}");
            assert_eq!(metrics.iterations, 4);
            assert_eq!(metrics.threads, threads);
            assert!(metrics.total_tokens > 0);
            assert!(metrics.tokens_per_sec > 0.0);
        }
    }

    #[test]
    fn progress_beacon_counts_runs_and_barriers() {
        let g = figure2_graph();
        let exec = Executor::new(&g, RuntimeConfig::new(binding(2)).with_iterations(3)).unwrap();
        let compiled = exec.compile();
        let before = compiled.progress();
        assert_eq!(before.runs_started, 0);
        assert_eq!(before.runs_finished, 0);
        assert_eq!(before.barriers, 0);
        assert_eq!(before.since_progress, None);
        exec.run(&KernelRegistry::new()).unwrap();
        exec.run(&KernelRegistry::new()).unwrap();
        let after = compiled.progress();
        assert_eq!(after.runs_started, 2);
        assert_eq!(after.runs_finished, 2);
        assert_eq!(after.barriers, 6, "3 iterations x 2 runs");
        assert!(after.since_progress.is_some());
    }

    #[test]
    fn alternate_policy_and_cycles_match_reference() {
        let g = figure2_graph();
        let config = RuntimeConfig::new(binding(2))
            .with_threads(4)
            .with_iterations(3)
            .with_policy(ControlPolicy::Alternate(vec![
                Mode::SelectOne(0),
                Mode::SelectOne(1),
            ]));
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        assert_eq!(metrics.firings, reference.firings);

        let g = figure4a_graph();
        let config = RuntimeConfig::new(binding(3))
            .with_threads(4)
            .with_iterations(2);
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        assert_eq!(metrics.firings, reference.firings);
    }

    #[test]
    fn binding_sequence_rebinds_at_iteration_barriers() {
        let g = figure2_graph();
        for threads in [1usize, 4] {
            let config = RuntimeConfig::new(binding(1))
                .with_threads(threads)
                .with_iterations(4)
                .with_binding_sequence(vec![binding(1), binding(3), binding(2)]);
            let reference = sim_reference(&g, &config);
            let exec = Executor::new(&g, config).unwrap();
            // q = [2, 2p, p, p, 2p, 2p] per phase; the last phase
            // persists once the sequence is exhausted.
            assert_eq!(exec.repetition_counts_for_iteration(0), &[2, 2, 1, 1, 2, 2]);
            assert_eq!(exec.repetition_counts_for_iteration(1), &[2, 6, 3, 3, 6, 6]);
            assert_eq!(exec.repetition_counts_for_iteration(3), &[2, 4, 2, 2, 4, 4]);
            let metrics = exec.run(&KernelRegistry::new()).unwrap();
            assert_eq!(metrics.firings, reference.firings, "threads = {threads}");
            assert_eq!(metrics.iterations, 4);
            // Two rebinds: into the p = 3 phase and into the p = 2 one.
            assert_eq!(metrics.rebinds.len(), 2);
            assert_eq!(metrics.rebinds[0].iteration, 1);
            assert_eq!(metrics.rebinds[0].binding.get("p"), Some(3));
            assert_eq!(metrics.rebinds[0].counts, vec![2, 6, 3, 3, 6, 6]);
            assert_eq!(metrics.rebinds[1].iteration, 2);
            assert_eq!(metrics.rebinds[1].binding.get("p"), Some(2));
            // The rings grew to cover the widest phase and never shrank.
            for (chan, cap) in metrics.channel_capacity.iter().enumerate() {
                for iteration in 0..4 {
                    assert!(
                        *cap >= exec.capacities_for_iteration(iteration)[chan],
                        "channel {chan} capacity {cap} below iteration {iteration} requirement"
                    );
                }
            }
            for (hw, cap) in metrics
                .channel_high_water
                .iter()
                .zip(&metrics.channel_capacity)
            {
                assert!(hw <= cap);
            }
        }
    }

    #[test]
    fn data_dependent_selector_matches_reference_modes() {
        use tpdf_core::control::{FnSelector, TableTrace};

        // B emits `ordinal % 3` on every output; C consumes pairs of
        // those values from e2 and selects F's data input from their
        // sum — a genuinely data-dependent control actor. The sim gets
        // the identical values through the trace.
        let g = figure2_graph();
        let mut registry = KernelRegistry::new();
        registry.register_fn("B", |ctx| {
            let v = (ctx.ordinal % 3) as i64;
            ctx.fill_outputs_cycling(&[Token::Int(v)]);
            Ok(())
        });
        let selector: Arc<dyn ModeSelector> =
            Arc::new(FnSelector::new("sum-parity", |_, inputs: &[i64]| {
                Mode::SelectOne((inputs.iter().sum::<i64>() % 2) as usize)
            }));
        let trace = TableTrace::new([("e2".to_string(), vec![0, 1, 2])]).shared();
        let config = RuntimeConfig::new(binding(2))
            .with_threads(4)
            .with_iterations(3)
            .with_mode_selector(selector)
            .with_value_trace(trace);
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config).unwrap().run(&registry).unwrap();
        assert_eq!(metrics.firings, reference.firings);
        assert_eq!(metrics.mode_sequences, reference.mode_sequences);
        // The emitted modes really vary with the data.
        let c = g.node_by_name("C").unwrap();
        let modes = &metrics.mode_sequences[c.0];
        assert!(modes.contains(&Mode::SelectOne(0)));
        assert!(modes.contains(&Mode::SelectOne(1)));
    }

    #[test]
    fn varying_mode_selectors_size_rings_from_the_whole_run() {
        use tpdf_core::control::FnSelector;

        // A producer gated by a feedback loop, whose controlled
        // consumer selects its channel throughout iteration 0 but
        // rejects it throughout iteration 1: the ping-pong occupancy of
        // iteration 0 (2 tokens) is far below iteration 1's full
        // production (8 tokens piling up on the rejected channel).
        // Firing ordinals never reset, so a single reference iteration
        // would size the ring at 2 × slack and deadlock iteration 1 —
        // a varying selector must force whole-run sizing.
        let g = TpdfGraph::builder()
            .kernel("SRC")
            .control("CON")
            .kernel_with("TRAN", KernelKind::Transaction { votes_required: 0 }, 1)
            .kernel("SNK")
            .channel("SRC", "TRAN", RateSeq::constant(2), RateSeq::constant(2), 0)
            .channel("TRAN", "SRC", RateSeq::constant(1), RateSeq::constant(1), 1)
            .control_channel("CON", "TRAN", RateSeq::constant(1), RateSeq::constant(1))
            .channel("TRAN", "SNK", RateSeq::constant(1), RateSeq::constant(4), 0)
            .build()
            .unwrap();
        let selector: Arc<dyn ModeSelector> = Arc::new(FnSelector::new(
            "reject-every-other-iteration",
            |firing, _| {
                // 4 control firings per iteration: iteration 0 selects
                // the data input, iteration 1 rejects it outright.
                if (firing / 4) % 2 == 0 {
                    Mode::SelectOne(0)
                } else {
                    Mode::SelectMany(Vec::new())
                }
            },
        ));
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(2)
            .with_iterations(2)
            .with_mode_selector(selector);
        let reference = sim_reference(&g, &config);
        let exec = Executor::new(&g, config).unwrap();
        let e1 = 0; // SRC → TRAN is the first declared channel
        assert!(
            exec.capacities()[e1] >= 8,
            "sizing must cover iteration 1's rejected-channel pile-up, got {}",
            exec.capacities()[e1]
        );
        let metrics = exec.run(&KernelRegistry::new()).unwrap();
        assert_eq!(metrics.firings, reference.firings);
        assert_eq!(metrics.mode_sequences, reference.mode_sequences);
    }

    #[test]
    fn kernel_set_mode_overrides_the_selector() {
        // C's registered behaviour returns the mode with its outputs;
        // the configured (default WaitAll) selector is never consulted.
        let g = figure2_graph();
        let mut registry = KernelRegistry::new();
        registry.register_fn("C", |ctx| {
            ctx.set_mode(Mode::SelectOne((ctx.ordinal % 2) as usize));
            ctx.fill_outputs_from_inputs();
            Ok(())
        });
        let config = RuntimeConfig::new(binding(1))
            .with_threads(2)
            .with_iterations(2);
        let metrics = Executor::new(&g, config).unwrap().run(&registry).unwrap();
        let c = g.node_by_name("C").unwrap();
        assert_eq!(
            metrics.mode_sequences[c.0],
            vec![Mode::SelectOne(0), Mode::SelectOne(1)]
        );
    }

    #[test]
    fn strict_capacities_still_complete() {
        // Slack 1 sizes every data ring at exactly the reference
        // high-water mark; the claim discipline must still find a
        // schedule.
        let g = figure2_graph();
        let config = RuntimeConfig::new(binding(4))
            .with_threads(4)
            .with_iterations(3)
            .with_capacity_slack(1);
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        assert_eq!(metrics.firings, reference.firings);
        for (hw, cap) in metrics
            .channel_high_water
            .iter()
            .zip(&metrics.channel_capacity)
        {
            assert!(*cap > 0, "every channel is a bounded ring now");
            assert!(hw <= cap, "high water {hw} exceeds capacity {cap}");
        }
    }

    #[test]
    fn many_iterations_stress_the_barrier() {
        // The iteration barrier runs once per iteration; hammer it from
        // several threads to catch reset races.
        let g = figure2_graph();
        let config = RuntimeConfig::new(binding(2))
            .with_threads(8)
            .with_iterations(200);
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        assert_eq!(metrics.firings, reference.firings);
        assert_eq!(metrics.iterations, 200);
    }

    #[test]
    fn firing_cost_ewma_reclassifies_between_runs() {
        // The telemetry is an EWMA, not a cumulative average: after a
        // compute-weighted run, a cheap registry on the SAME executor
        // must bring the estimate back down within its own samples. A
        // cumulative mean stays anchored at ~half the heavy cost and
        // would keep misclassifying the fine-grained workload.
        fn spin(duration: Duration) {
            let start = Instant::now();
            while start.elapsed() < duration {
                std::hint::spin_loop();
            }
        }
        let g = figure2_graph();
        let config = RuntimeConfig::new(binding(1))
            .with_threads(2)
            .with_iterations(100);
        let exec = Executor::new(&g, config).unwrap();

        let mut heavy = KernelRegistry::new();
        for node in ["A", "B", "C", "D", "E", "F"] {
            heavy.register_fn(node, |ctx| {
                spin(Duration::from_micros(100));
                ctx.fill_outputs_from_inputs();
                Ok(())
            });
        }
        exec.run(&heavy).unwrap();
        let after_heavy = exec.sampled_firing_cost_ns().expect("samples were taken");
        assert!(
            after_heavy > FINE_GRAIN_NS,
            "100µs kernels must classify as coarse-grained, got {after_heavy}ns"
        );

        exec.run(&KernelRegistry::new()).unwrap();
        let after_cheap = exec.sampled_firing_cost_ns().expect("samples were taken");
        // ~125 cheap samples decay the 100µs estimate by (7/8)^125; a
        // cumulative mean would still sit at ~after_heavy / 2. The 4×
        // bound keeps the assertion robust to scheduling noise while
        // cleanly separating the two behaviours.
        assert!(
            after_cheap < after_heavy / 4,
            "EWMA must track the cheap registry: {after_cheap}ns vs {after_heavy}ns before"
        );
    }

    #[test]
    fn invalid_configurations_rejected() {
        let g = figure2_graph();
        assert!(matches!(
            Executor::new(&g, RuntimeConfig::new(binding(1)).with_iterations(0)),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(matches!(
            Executor::new(&g, RuntimeConfig::new(Binding::new())),
            Err(RuntimeError::Analysis(_))
        ));
        // The public `threads` field can bypass with_threads' clamp.
        let mut config = RuntimeConfig::new(binding(1));
        config.threads = 0;
        assert!(matches!(
            Executor::new(&g, config),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn control_port_waits_for_its_full_consumption_rate() {
        // K consumes two control tokens per firing; C produces one per
        // firing and fires twice per iteration. The runtime must wait
        // for both tokens (not fire on the first), and one K firing
        // consumes both.
        let g = TpdfGraph::builder()
            .kernel("A")
            .control("C")
            .kernel("K")
            .channel("A", "C", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel("A", "K", RateSeq::constant(1), RateSeq::constant(2), 0)
            .control_channel("C", "K", RateSeq::constant(1), RateSeq::constant(2))
            .build()
            .unwrap();
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(2)
            .with_iterations(3)
            .with_policy(ControlPolicy::SelectInput(0));
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        let k = g.node_by_name("K").unwrap();
        let c = g.node_by_name("C").unwrap();
        assert_eq!(metrics.firings[k.0], 3);
        assert_eq!(metrics.firings[c.0], 6);
    }

    #[test]
    fn deadlocked_graph_reports_error() {
        let g = figure4_deadlocked_graph();
        // The reference sizing run already detects the deadlock.
        let result = Executor::new(&g, RuntimeConfig::new(binding(2)));
        assert!(matches!(result, Err(RuntimeError::Analysis(_))));
    }

    /// The stall post-mortem (a defensive path — a well-formed graph's
    /// deadlocks are caught by analysis before the runtime ever sees
    /// them) must list per-node remaining budgets and attach the
    /// flight-recorder tail, bounded by [`STALL_DUMP_EVENTS`].
    #[test]
    fn stall_error_carries_budgets_and_bounded_recorder_tail() {
        let tracer = Tracer::flight_recorder(1, 256);
        // More history than the dump bound: the tail must be clipped.
        for i in 0..(2 * STALL_DUMP_EVENTS as u64) {
            tracer.event(0, EventKind::Steal, 0, i, 0, 0);
        }
        let g = figure2_graph();
        let executor = Executor::new(
            &g,
            RuntimeConfig::new(binding(2)).with_tracer(Arc::clone(&tracer)),
        )
        .unwrap();
        let engine = executor.engine();
        let state = engine.initial_state(1);
        let error = engine.stall_error(&state);
        let RuntimeError::Stalled {
            blocked,
            diagnostics,
            ..
        } = &error
        else {
            panic!("expected Stalled, got {error}");
        };
        assert!(!blocked.is_empty());
        assert!(
            diagnostics.contains("firings remaining"),
            "budgets must be listed:\n{diagnostics}"
        );
        assert!(
            diagnostics.contains("flight recorder tail"),
            "the recorder tail must be attached:\n{diagnostics}"
        );
        let tail_lines = diagnostics
            .lines()
            .filter(|line| line.starts_with("    "))
            .count();
        assert!(
            tail_lines > 0 && tail_lines <= STALL_DUMP_EVENTS,
            "tail must be non-empty and bounded by {STALL_DUMP_EVENTS}, got {tail_lines}"
        );
        // The stall itself is recorded as a control-lane event, and the
        // rendered error surfaces the diagnostics.
        assert_eq!(tracer.collect().count(EventKind::Stall), 1);
        assert!(error.to_string().contains("flight recorder tail"));
    }

    /// Without a tracer the stall error still explains itself through
    /// the per-node budgets, just without a recorder tail.
    #[test]
    fn stall_error_without_tracer_lists_budgets_only() {
        let g = figure2_graph();
        let executor = Executor::new(&g, RuntimeConfig::new(binding(2))).unwrap();
        let engine = executor.engine();
        let state = engine.initial_state(1);
        let error = engine.stall_error(&state);
        let RuntimeError::Stalled { diagnostics, .. } = &error else {
            panic!("expected Stalled, got {error}");
        };
        assert!(diagnostics.contains("firings remaining"));
        assert!(!diagnostics.contains("flight recorder tail"));
    }

    #[test]
    fn transaction_vote_selects_majority_value() {
        let g = fork_join_with_vote(3, 2);
        let mut registry = KernelRegistry::new();
        for (worker, value) in [("w0", 5i64), ("w1", 9), ("w2", 5)] {
            registry.register_fn(worker, move |ctx| {
                ctx.fill_outputs_cycling(&[Token::Int(value)]);
                Ok(())
            });
        }
        let capture = crate::cases::OutputCapture::new();
        capture.install(&mut registry, "snk");
        let config = RuntimeConfig::new(Binding::new()).with_threads(4);
        let metrics = Executor::new(&g, config).unwrap().run(&registry).unwrap();
        // w1 disagrees; the two agreeing workers (value 5) win the vote.
        assert_eq!(capture.take_tokens(), vec![Token::Int(5)]);
        assert_eq!(metrics.vote_failures, 0);
    }

    #[test]
    fn transaction_vote_failure_is_counted() {
        let g = fork_join_with_vote(3, 3);
        let mut registry = KernelRegistry::new();
        for (worker, value) in [("w0", 1i64), ("w1", 2), ("w2", 3)] {
            registry.register_fn(worker, move |ctx| {
                ctx.fill_outputs_cycling(&[Token::Int(value)]);
                Ok(())
            });
        }
        let config = RuntimeConfig::new(Binding::new()).with_threads(2);
        let metrics = Executor::new(&g, config).unwrap().run(&registry).unwrap();
        assert_eq!(metrics.vote_failures, 1);
    }

    /// `fork_join` with a voting Transaction: src → dup → w0..wn → tran.
    fn fork_join_with_vote(branches: usize, votes: u32) -> TpdfGraph {
        let mut b = TpdfGraph::builder()
            .kernel("src")
            .kernel_with("dup", KernelKind::SelectDuplicate, 1)
            .control("ctl")
            .kernel_with(
                "tran",
                KernelKind::Transaction {
                    votes_required: votes,
                },
                1,
            )
            .kernel("snk")
            .channel("src", "dup", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel("src", "ctl", RateSeq::constant(1), RateSeq::constant(1), 0)
            .control_channel("ctl", "tran", RateSeq::constant(1), RateSeq::constant(1))
            .channel("tran", "snk", RateSeq::constant(1), RateSeq::constant(1), 0);
        for i in 0..branches {
            let name = format!("w{i}");
            b = b
                .kernel(&name)
                .channel("dup", &name, RateSeq::constant(1), RateSeq::constant(1), 0)
                .channel_with_priority(
                    &name,
                    "tran",
                    RateSeq::constant(1),
                    RateSeq::constant(1),
                    0,
                    (i + 1) as u32,
                );
        }
        b.build().unwrap()
    }

    /// src fans out to a fast and a slow kernel; a clock-driven
    /// Transaction picks the best result available at the deadline.
    fn deadline_graph() -> TpdfGraph {
        TpdfGraph::builder()
            .kernel("src")
            .kernel("fast")
            .kernel("slow")
            .kernel_with("clock", KernelKind::Clock { period: 50 }, 0)
            .kernel_with("tran", KernelKind::Transaction { votes_required: 0 }, 1)
            .kernel("snk")
            .channel("src", "fast", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel("src", "slow", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel_with_priority(
                "fast",
                "tran",
                RateSeq::constant(1),
                RateSeq::constant(1),
                0,
                1,
            )
            .channel_with_priority(
                "slow",
                "tran",
                RateSeq::constant(1),
                RateSeq::constant(1),
                0,
                2,
            )
            .control_channel("clock", "tran", RateSeq::constant(1), RateSeq::constant(1))
            .channel("tran", "snk", RateSeq::constant(1), RateSeq::constant(1), 0)
            .build()
            .unwrap()
    }

    fn sleepy_registry(fast_ms: u64, slow_ms: u64) -> KernelRegistry {
        let mut registry = KernelRegistry::new();
        for (name, delay, value) in [("fast", fast_ms, 1i64), ("slow", slow_ms, 2)] {
            registry.register_fn(name, move |ctx| {
                std::thread::sleep(Duration::from_millis(delay));
                ctx.fill_outputs_cycling(&[Token::Int(value)]);
                Ok(())
            });
        }
        registry
    }

    #[test]
    fn real_deadline_takes_best_available_result() {
        // Clock period 50 units × 1 ms/unit = 50 ms deadline. The fast
        // kernel (10 ms) finishes before it, the slow one (250 ms) does
        // not: the Transaction must select the fast (lower-priority)
        // result at the deadline.
        let g = deadline_graph();
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(4)
            .with_policy(ControlPolicy::HighestPriority)
            .with_real_time(Duration::from_millis(1));
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&sleepy_registry(10, 250))
            .unwrap();
        assert_eq!(metrics.deadline_misses, 0);
        assert_eq!(metrics.deadline_selections.len(), 1);
        let selection = &metrics.deadline_selections[0];
        assert_eq!(selection.selected_priority, Some(1), "fast input wins");
        let fast = g.node_by_name("fast").unwrap();
        let chan = selection.selected_channel.unwrap();
        assert_eq!(g.channel(chan).source, fast);
        // The deadline fired at ≈ 50 ms, well before the slow kernel.
        assert!(
            selection.at >= Duration::from_millis(45),
            "{:?}",
            selection.at
        );
        assert!(
            selection.at < Duration::from_millis(240),
            "{:?}",
            selection.at
        );
    }

    #[test]
    fn real_deadline_miss_is_detected_and_survived() {
        // Both kernels are slower than the 50 ms deadline: the
        // Transaction fires empty at the deadline (a miss) and the sink
        // still receives a placeholder token.
        let g = deadline_graph();
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(4)
            .with_policy(ControlPolicy::HighestPriority)
            .with_real_time(Duration::from_millis(1));
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&sleepy_registry(150, 250))
            .unwrap();
        assert_eq!(metrics.deadline_misses, 1);
        assert_eq!(metrics.deadline_selections.len(), 1);
        assert_eq!(metrics.deadline_selections[0].selected_channel, None);
        let snk = g.node_by_name("snk").unwrap();
        assert_eq!(metrics.firings[snk.0], 1);
    }
}

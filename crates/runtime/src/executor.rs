//! The multi-threaded, token-level executor.
//!
//! ## Execution model
//!
//! The executor runs `iterations` complete graph iterations (repetition
//! counts come from `tpdf_core::consistency`), firing any node whose
//! *mode-selected* inputs are ready — the untimed `tpdf-sim` engine's
//! semantics, but on real worker threads moving real [`Token`] values:
//!
//! * Each data channel is a fixed-capacity [`RingBuffer`] sized from a
//!   reference `tpdf-sim` execution (per-channel high-water marks times
//!   a configurable slack), so memory is bounded by the static analysis.
//! * A firing is *claimed* under the scheduler lock: its control token
//!   is popped (selecting the [`Mode`]), its selected input tokens are
//!   popped, and its output space is reserved. The kernel computation
//!   then runs outside the lock, in parallel with other nodes; outputs
//!   are published on completion. Each node is sequential with itself,
//!   so every channel sees a deterministic token order (single producer,
//!   single consumer, in-order firings — a Kahn-style determinacy
//!   argument), which is what makes cross-validation against the
//!   single-threaded engine exact.
//! * Control actors emit control tokens whose [`Mode`] comes from the
//!   same [`ControlPolicy`] sequence as the reference engine.
//! * [`KernelKind::Clock`] watchdogs either fire as ordinary control
//!   actors ([`ClockMode::Virtual`], used for cross-validation) or at
//!   real wall-clock deadlines ([`ClockMode::RealTime`], in which a
//!   clock-driven Transaction in [`Mode::HighestPriority`] takes the
//!   best result available *now* — and fires empty, counting a deadline
//!   miss, when nothing is ready).
//! * At the end of each iteration, data channels whose consuming port
//!   was rejected for the whole iteration are flushed back to their
//!   initial state (the paper's "unused edges are removed").

use crate::kernel::{
    fire_default, fire_select_duplicate, fire_transaction, FiringContext, KernelRegistry,
    PortInput, PortOutput,
};
use crate::metrics::{DeadlineSelection, Metrics};
use crate::ring::RingBuffer;
use crate::token::Token;
use crate::RuntimeError;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tpdf_core::actors::KernelKind;
use tpdf_core::graph::{ChannelId, NodeId, TpdfGraph};
use tpdf_core::mode::Mode;
use tpdf_sim::engine::{ControlPolicy, SimulationConfig, Simulator};
use tpdf_symexpr::Binding;

/// How [`KernelKind::Clock`] watchdogs are driven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClockMode {
    /// Clocks fire as ordinary control actors, as fast as the dataflow
    /// allows. This matches the untimed `tpdf-sim` engine and is the
    /// mode cross-validation uses.
    Virtual,
    /// Clocks fire at real wall-clock deadlines: tick `k` of a clock
    /// with period `P` fires at `start + k · P · time_unit`.
    RealTime {
        /// Wall-clock duration of one virtual time unit (graph
        /// execution times and clock periods are expressed in it).
        time_unit: Duration,
    },
}

/// Configuration of a runtime execution.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Concrete values of the graph's integer parameters.
    pub binding: Binding,
    /// Mode sequence applied by control actors (same semantics as the
    /// `tpdf-sim` engine).
    pub control_policy: ControlPolicy,
    /// Number of worker threads.
    pub threads: usize,
    /// Complete graph iterations to execute.
    pub iterations: u64,
    /// Clock driving mode.
    pub clock_mode: ClockMode,
    /// Ring capacity = reference high-water × this slack factor (≥ 1).
    /// Slack 1 is the tightest sizing the reference execution proves
    /// deadlock-free; larger values give producers headroom to run
    /// ahead.
    pub capacity_slack: u64,
    /// Safety net: a worker finding nothing to do wakes up after this
    /// long to re-check for stalls.
    pub stall_timeout: Duration,
}

impl RuntimeConfig {
    /// Creates a configuration: 4 threads, 1 iteration, virtual clocks,
    /// capacity slack 2.
    pub fn new(binding: Binding) -> Self {
        RuntimeConfig {
            binding,
            control_policy: ControlPolicy::default(),
            threads: 4,
            iterations: 1,
            clock_mode: ClockMode::Virtual,
            capacity_slack: 2,
            stall_timeout: Duration::from_millis(100),
        }
    }

    /// Sets the control policy.
    pub fn with_policy(mut self, policy: ControlPolicy) -> Self {
        self.control_policy = policy;
        self
    }

    /// Sets the worker thread count (at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the number of iterations.
    pub fn with_iterations(mut self, iterations: u64) -> Self {
        self.iterations = iterations;
        self
    }

    /// Drives clocks from the wall clock, one virtual time unit lasting
    /// `time_unit`.
    pub fn with_real_time(mut self, time_unit: Duration) -> Self {
        self.clock_mode = ClockMode::RealTime { time_unit };
        self
    }

    /// Sets the ring-capacity slack factor (clamped to ≥ 1).
    pub fn with_capacity_slack(mut self, slack: u64) -> Self {
        self.capacity_slack = slack.max(1);
        self
    }
}

/// A control token in flight: the mode it selects.
#[derive(Debug, Clone)]
struct ControlMsg {
    mode: Mode,
}

/// Per-channel storage: a bounded ring for data, an unbounded queue for
/// control tokens (which are mode values, not payloads).
#[derive(Debug)]
enum ChannelStore {
    Data(RingBuffer<Token>),
    Control {
        queue: VecDeque<ControlMsg>,
        high_water: u64,
    },
}

/// Static, per-node facts precomputed at executor construction.
#[derive(Debug)]
struct NodeInfo {
    name: String,
    /// Control actor in the paper's sense (includes Clock kernels).
    is_control_actor: bool,
    is_clock: bool,
    clock_period: u64,
    is_transaction: bool,
    votes_required: u32,
    is_select_duplicate: bool,
    control_port: Option<usize>,
    /// The control port is fed by a Clock (deadline semantics apply).
    control_from_clock: bool,
    /// Data input channels in port order.
    data_inputs: Vec<usize>,
    /// All output channels.
    outputs: Vec<usize>,
}

/// Static, per-channel facts with rates made concrete.
#[derive(Debug)]
struct ChanInfo {
    label: String,
    target: usize,
    is_control: bool,
    initial_tokens: u64,
    priority: u32,
    prod_rates: Vec<u64>,
    cons_rates: Vec<u64>,
    /// The consuming node owns a control port (flush rule applies).
    target_controlled: bool,
}

impl ChanInfo {
    fn prod_rate(&self, ordinal: u64) -> u64 {
        self.prod_rates[(ordinal as usize) % self.prod_rates.len()]
    }

    fn cons_rate(&self, ordinal: u64) -> u64 {
        self.cons_rates[(ordinal as usize) % self.cons_rates.len()]
    }
}

/// Mutable execution state, guarded by the scheduler lock.
#[derive(Debug)]
struct ExecState {
    iteration: u64,
    fired_iter: Vec<u64>,
    fired_total: Vec<u64>,
    in_flight: Vec<bool>,
    in_flight_count: usize,
    channels: Vec<ChannelStore>,
    /// Output tokens reserved by claimed-but-unfinished firings.
    reserved: Vec<u64>,
    /// Data channels consumed at least once this iteration.
    selected: BTreeSet<usize>,
    /// Firing counts used to index the control policy's mode sequence.
    control_firings: Vec<u64>,
    tokens_pushed: Vec<u64>,
    deadline_misses: u64,
    vote_failures: u64,
    deadline_selections: Vec<DeadlineSelection>,
    error: Option<RuntimeError>,
    done: bool,
}

/// A claimed firing: inputs consumed, outputs reserved, ready to compute.
struct Claim {
    node: usize,
    ordinal_total: u64,
    mode: Mode,
    inputs: Vec<PortInput>,
    /// `(channel, rate)` for data outputs, in port order.
    data_outputs: Vec<(usize, u64)>,
    /// `(channel, rate)` for control outputs.
    control_outputs: Vec<(usize, u64)>,
    deadline_missed: bool,
    /// Record a [`DeadlineSelection`] for this firing.
    record_deadline: bool,
}

/// The multi-threaded executor of one TPDF graph.
///
/// # Examples
///
/// ```
/// use tpdf_core::examples::figure2_graph;
/// use tpdf_runtime::executor::{Executor, RuntimeConfig};
/// use tpdf_runtime::kernel::KernelRegistry;
/// use tpdf_symexpr::Binding;
///
/// # fn main() -> Result<(), tpdf_runtime::RuntimeError> {
/// let graph = figure2_graph();
/// let config = RuntimeConfig::new(Binding::from_pairs([("p", 2)]))
///     .with_threads(4)
///     .with_iterations(3);
/// let metrics = Executor::new(&graph, config)?.run(&KernelRegistry::new())?;
/// // q = [2, 2p, p, p, 2p, 2p] with p = 2, three iterations.
/// assert_eq!(metrics.firings, vec![6, 12, 6, 6, 12, 12]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Executor<'g> {
    /// Kept for diagnostics and lifetime-tying to the analysed graph.
    graph: &'g TpdfGraph,
    config: RuntimeConfig,
    counts: Vec<u64>,
    nodes: Vec<NodeInfo>,
    chans: Vec<ChanInfo>,
    capacities: Vec<u64>,
    /// Claim scan order: control actors first (Section III-D priority
    /// rule), then kernels.
    scan_order: Vec<usize>,
}

impl<'g> Executor<'g> {
    /// Builds an executor: checks consistency, concretises rates and
    /// sizes every data ring from a reference `tpdf-sim` execution.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Analysis`] when the graph is inconsistent
    /// or the binding incomplete, and propagates any error of the
    /// reference sizing run.
    pub fn new(graph: &'g TpdfGraph, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        if config.iterations == 0 {
            return Err(RuntimeError::InvalidConfig(
                "at least one iteration must be requested".to_string(),
            ));
        }
        // `with_threads` clamps, but `threads` is a public field: a zero
        // slipping through would make `run` return an empty Ok no-op.
        if config.threads == 0 {
            return Err(RuntimeError::InvalidConfig(
                "at least one worker thread is required".to_string(),
            ));
        }
        let repetition = tpdf_core::consistency::symbolic_repetition_vector(graph)
            .map_err(|e| RuntimeError::Analysis(e.to_string()))?;
        let counts = repetition
            .concrete(&config.binding)
            .map_err(|e| RuntimeError::Analysis(e.to_string()))?;

        // Reference execution: per-channel high-water marks under the
        // same policy and binding determine the ring capacities.
        let sim_config = SimulationConfig::new(config.binding.clone())
            .with_policy(config.control_policy.clone());
        let reference = Simulator::new(graph, sim_config)
            .map_err(|e| RuntimeError::Analysis(e.to_string()))?
            .run_iterations(1)
            .map_err(|e| RuntimeError::Analysis(format!("reference sizing run failed: {e}")))?;

        let clock_sources: BTreeSet<NodeId> = graph
            .nodes()
            .filter(|(_, n)| matches!(n.kernel_kind(), Some(k) if k.is_clock()))
            .map(|(id, _)| id)
            .collect();
        let control_actor_ids: BTreeSet<NodeId> =
            graph.control_actors().map(|(id, _)| id).collect();

        let mut nodes = Vec::with_capacity(graph.node_count());
        for (id, node) in graph.nodes() {
            let kind = node.kernel_kind();
            let control_port = graph.control_port(id).map(|c| c.0);
            let control_from_clock = graph
                .control_port(id)
                .map(|cp| clock_sources.contains(&graph.channel(cp).source))
                .unwrap_or(false);
            nodes.push(NodeInfo {
                name: node.name.clone(),
                is_control_actor: control_actor_ids.contains(&id),
                is_clock: matches!(kind, Some(k) if k.is_clock()),
                clock_period: kind.and_then(|k| k.clock_period()).unwrap_or(0),
                is_transaction: matches!(kind, Some(k) if k.is_transaction()),
                votes_required: match kind {
                    Some(KernelKind::Transaction { votes_required }) => *votes_required,
                    _ => 0,
                },
                is_select_duplicate: matches!(kind, Some(k) if k.is_select_duplicate()),
                control_port,
                control_from_clock,
                data_inputs: graph.data_input_channels(id).map(|(c, _)| c.0).collect(),
                outputs: graph.output_channels(id).map(|(c, _)| c.0).collect(),
            });
        }

        let mut chans = Vec::with_capacity(graph.channel_count());
        for (id, chan) in graph.channels() {
            let concretise = |rates: &tpdf_core::rate::RateSeq| -> Result<Vec<u64>, RuntimeError> {
                (0..rates.phases() as u64)
                    .map(|i| {
                        rates
                            .concrete(i, &config.binding)
                            .map_err(|e| RuntimeError::Analysis(e.to_string()))
                    })
                    .collect()
            };
            chans.push(ChanInfo {
                label: chan.label.clone(),
                target: chan.target.0,
                is_control: chan.is_control(),
                initial_tokens: chan.initial_tokens,
                priority: chan.priority,
                prod_rates: concretise(&chan.production)?,
                cons_rates: concretise(&chan.consumption)?,
                target_controlled: graph.control_port(chan.target).is_some(),
            });
            debug_assert_eq!(id.0, chans.len() - 1);
        }

        let capacities: Vec<u64> = reference
            .channel_high_water
            .iter()
            .zip(&chans)
            .map(|(hw, info)| {
                if info.is_control {
                    0
                } else {
                    hw.max(&info.initial_tokens).max(&1) * config.capacity_slack
                }
            })
            .collect();

        let mut scan_order: Vec<usize> = (0..graph.node_count())
            .filter(|&n| nodes[n].is_control_actor)
            .collect();
        scan_order.extend((0..graph.node_count()).filter(|&n| !nodes[n].is_control_actor));

        Ok(Executor {
            graph,
            config,
            counts,
            nodes,
            chans,
            capacities,
            scan_order,
        })
    }

    /// The graph this executor runs.
    pub fn graph(&self) -> &'g TpdfGraph {
        self.graph
    }

    /// The configured ring capacity of every channel (0 = unbounded
    /// control queue).
    pub fn capacities(&self) -> &[u64] {
        &self.capacities
    }

    /// The per-iteration repetition count of every node.
    pub fn repetition_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Executes the configured number of iterations on the worker pool
    /// and reports [`Metrics`].
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Stalled`] when no node can make progress;
    /// * [`RuntimeError::RateMismatch`] when a behaviour produced the
    ///   wrong number of tokens;
    /// * any [`RuntimeError::KernelFailed`] raised by a behaviour.
    pub fn run(&self, registry: &KernelRegistry) -> Result<Metrics, RuntimeError> {
        let state = Mutex::new(self.initial_state());
        let ready = Condvar::new();
        let start = Instant::now();

        std::thread::scope(|scope| {
            for _ in 0..self.config.threads {
                scope.spawn(|| self.worker_loop(&state, &ready, registry, start));
            }
        });

        let elapsed = start.elapsed();
        let state = state.into_inner().expect("no worker may panic");
        if let Some(error) = state.error {
            return Err(error);
        }
        let total_tokens: u64 = state.tokens_pushed.iter().sum();
        let channel_high_water: Vec<u64> = state
            .channels
            .iter()
            .map(|c| match c {
                ChannelStore::Data(ring) => ring.high_water() as u64,
                ChannelStore::Control { high_water, .. } => *high_water,
            })
            .collect();
        Ok(Metrics {
            iterations: state.iteration,
            threads: self.config.threads,
            firings: state.fired_total,
            tokens_pushed: state.tokens_pushed,
            channel_high_water,
            channel_capacity: self.capacities.clone(),
            total_tokens,
            elapsed,
            tokens_per_sec: if elapsed.is_zero() {
                0.0
            } else {
                total_tokens as f64 / elapsed.as_secs_f64()
            },
            deadline_misses: state.deadline_misses,
            vote_failures: state.vote_failures,
            deadline_selections: state.deadline_selections,
        })
    }

    fn initial_state(&self) -> ExecState {
        let channels = self
            .chans
            .iter()
            .enumerate()
            .map(|(i, info)| {
                if info.is_control {
                    ChannelStore::Control {
                        queue: VecDeque::new(),
                        high_water: 0,
                    }
                } else {
                    let mut ring = RingBuffer::new(info.label.clone(), self.capacities[i] as usize);
                    for _ in 0..info.initial_tokens {
                        ring.push(Token::Unit)
                            .expect("capacity covers initial tokens");
                    }
                    ChannelStore::Data(ring)
                }
            })
            .collect();
        ExecState {
            iteration: 0,
            fired_iter: vec![0; self.nodes.len()],
            fired_total: vec![0; self.nodes.len()],
            in_flight: vec![false; self.nodes.len()],
            in_flight_count: 0,
            channels,
            reserved: vec![0; self.chans.len()],
            selected: BTreeSet::new(),
            control_firings: vec![0; self.nodes.len()],
            tokens_pushed: vec![0; self.chans.len()],
            deadline_misses: 0,
            vote_failures: 0,
            deadline_selections: Vec::new(),
            error: None,
            done: false,
        }
    }

    fn worker_loop(
        &self,
        state: &Mutex<ExecState>,
        ready: &Condvar,
        registry: &KernelRegistry,
        start: Instant,
    ) {
        let mut guard = state.lock().expect("scheduler lock");
        loop {
            if guard.done || guard.error.is_some() {
                ready.notify_all();
                return;
            }

            // 1. Real-time clock ticks that are due fire immediately.
            if let ClockMode::RealTime { time_unit } = &self.config.clock_mode {
                if let Some(clock) = self.due_clock(&guard, start, *time_unit) {
                    self.fire_clock(&mut guard, clock);
                    self.finish_iteration_if_complete(&mut guard);
                    ready.notify_all();
                    continue;
                }
            }

            // 2. Claim and execute a ready firing.
            if let Some(claim) = self.try_claim(&mut guard) {
                drop(guard);
                let outcome = self.execute(claim, registry, start);
                guard = state.lock().expect("scheduler lock");
                match outcome {
                    Ok((claim, outputs)) => {
                        if let Err(e) = self.complete(&mut guard, claim, outputs, start) {
                            guard.error = Some(e);
                        }
                        self.finish_iteration_if_complete(&mut guard);
                    }
                    Err(e) => guard.error = Some(e),
                }
                ready.notify_all();
                continue;
            }

            // 3. Nothing claimable: wait for a completion or the next
            //    clock tick — or report a stall.
            let next_tick = match &self.config.clock_mode {
                ClockMode::RealTime { time_unit } => self.next_tick_in(&guard, start, *time_unit),
                ClockMode::Virtual => None,
            };
            if guard.in_flight_count == 0 && next_tick.is_none() {
                guard.error = Some(RuntimeError::Stalled {
                    blocked: self.blocked_names(&guard),
                    iteration: guard.iteration,
                });
                ready.notify_all();
                return;
            }
            let timeout = next_tick.unwrap_or(self.config.stall_timeout);
            let (g, _) = ready.wait_timeout(guard, timeout).expect("scheduler lock");
            guard = g;
        }
    }

    /// Names of nodes with remaining firings, for stall diagnostics.
    fn blocked_names(&self, state: &ExecState) -> Vec<String> {
        self.scan_order
            .iter()
            .filter(|&&n| state.fired_iter[n] < self.counts[n])
            .map(|&n| self.nodes[n].name.clone())
            .collect()
    }

    /// The wall-clock instant of real-time clock tick `k` (0-based) of
    /// `node`. Computed in 128-bit nanoseconds: a `Duration * u32`
    /// shortcut would wrap after ~4 G virtual units (minutes to hours
    /// into a fine-grained streaming run).
    fn tick_instant(&self, start: Instant, node: usize, k: u64, unit: Duration) -> Instant {
        let ticks = (k + 1).saturating_mul(self.nodes[node].clock_period);
        let nanos = unit.as_nanos().saturating_mul(ticks as u128);
        let secs = (nanos / 1_000_000_000) as u64;
        let subsec = (nanos % 1_000_000_000) as u32;
        start + Duration::new(secs, subsec)
    }

    /// A clock whose next tick is due now, if any.
    fn due_clock(&self, state: &ExecState, start: Instant, unit: Duration) -> Option<usize> {
        let now = Instant::now();
        (0..self.nodes.len()).find(|&n| {
            self.nodes[n].is_clock
                && state.fired_iter[n] < self.counts[n]
                && now >= self.tick_instant(start, n, state.fired_total[n], unit)
        })
    }

    /// Time until the earliest pending clock tick, if any clock still
    /// has firings left this iteration.
    fn next_tick_in(&self, state: &ExecState, start: Instant, unit: Duration) -> Option<Duration> {
        let now = Instant::now();
        (0..self.nodes.len())
            .filter(|&n| self.nodes[n].is_clock && state.fired_iter[n] < self.counts[n])
            .map(|n| {
                let tick = self.tick_instant(start, n, state.fired_total[n], unit);
                tick.saturating_duration_since(now)
            })
            .min()
    }

    /// Fires a real-time clock: emits its control tokens (and any data
    /// tokens) without consuming anything, exactly like the virtual-time
    /// engine's tick handling.
    fn fire_clock(&self, state: &mut ExecState, node: usize) {
        let ordinal = state.fired_iter[node];
        let policy_mode = self
            .config
            .control_policy
            .mode_for(state.control_firings[node]);
        for &chan in &self.nodes[node].outputs {
            let rate = self.chans[chan].prod_rate(ordinal);
            match &mut state.channels[chan] {
                ChannelStore::Control { queue, high_water } => {
                    for _ in 0..rate {
                        queue.push_back(ControlMsg {
                            mode: policy_mode.clone(),
                        });
                    }
                    *high_water = (*high_water).max(queue.len() as u64);
                }
                ChannelStore::Data(ring) => {
                    for _ in 0..rate {
                        if let Err(e) = ring.push(Token::Unit) {
                            state.error = Some(e);
                            return;
                        }
                    }
                }
            }
            state.tokens_pushed[chan] += rate;
        }
        state.control_firings[node] += 1;
        state.fired_iter[node] += 1;
        state.fired_total[node] += 1;
    }

    /// Attempts to claim one ready firing, consuming its inputs and
    /// reserving its output space. Must run under the scheduler lock.
    fn try_claim(&self, state: &mut ExecState) -> Option<Claim> {
        let real_time = matches!(self.config.clock_mode, ClockMode::RealTime { .. });
        for &node in &self.scan_order {
            if state.in_flight[node]
                || state.fired_iter[node] >= self.counts[node]
                || (real_time && self.nodes[node].is_clock)
            {
                continue;
            }
            if let Some(claim) = self.try_claim_node(state, node, real_time) {
                return Some(claim);
            }
        }
        None
    }

    fn try_claim_node(&self, state: &mut ExecState, node: usize, real_time: bool) -> Option<Claim> {
        let info = &self.nodes[node];
        let ordinal_iter = state.fired_iter[node];

        // 1. Resolve the mode of this firing from the control port.
        let control_need = info
            .control_port
            .map(|cp| self.chans[cp].cons_rate(ordinal_iter))
            .unwrap_or(0);
        let mode = if control_need > 0 {
            let cp = info.control_port.expect("need implies port");
            match &state.channels[cp] {
                // All `control_need` tokens must be present (they are
                // popped below); the firing's mode comes from the first.
                ChannelStore::Control { queue, .. } => {
                    if (queue.len() as u64) < control_need {
                        return None;
                    }
                    queue.front().expect("length checked").mode.clone()
                }
                ChannelStore::Data(_) => unreachable!("control port backed by data ring"),
            }
        } else {
            Mode::WaitAll
        };

        // 2. Determine the selected data inputs.
        let port_count = info.data_inputs.len();
        let rates: Vec<u64> = info
            .data_inputs
            .iter()
            .map(|&c| self.chans[c].cons_rate(ordinal_iter))
            .collect();
        let available = |state: &ExecState, chan: usize, rate: u64| -> bool {
            match &state.channels[chan] {
                ChannelStore::Data(ring) => ring.len() as u64 >= rate,
                ChannelStore::Control { .. } => unreachable!("data port backed by control queue"),
            }
        };
        let mut deadline_missed = false;
        let selected: Vec<(usize, usize, u64)> = match &mode {
            Mode::HighestPriority => {
                let mut candidates: Vec<(u32, usize, usize, u64)> = info
                    .data_inputs
                    .iter()
                    .enumerate()
                    .filter(|(port, &chan)| available(state, chan, rates[*port]))
                    .map(|(port, &chan)| (self.chans[chan].priority, port, chan, rates[port]))
                    .collect();
                candidates.sort_by_key(|(prio, _, _, _)| std::cmp::Reverse(*prio));
                match candidates.first() {
                    Some(&(_, port, chan, rate)) => vec![(port, chan, rate)],
                    None if port_count == 0 => Vec::new(),
                    None if real_time && info.is_transaction && info.control_from_clock => {
                        // Deadline semantics: the clock token forces the
                        // firing even though no result is ready yet.
                        deadline_missed = true;
                        Vec::new()
                    }
                    None => return None,
                }
            }
            m => {
                let picked: Vec<(usize, usize, u64)> = info
                    .data_inputs
                    .iter()
                    .enumerate()
                    .filter(|(port, _)| m.selects(*port, port_count))
                    .map(|(port, &chan)| (port, chan, rates[port]))
                    .collect();
                if picked
                    .iter()
                    .any(|&(_, chan, rate)| !available(state, chan, rate))
                {
                    return None;
                }
                picked
            }
        };

        // 3. Output space must be reservable for every data output.
        let mut data_outputs = Vec::new();
        let mut control_outputs = Vec::new();
        for &chan in &info.outputs {
            let rate = self.chans[chan].prod_rate(ordinal_iter);
            if self.chans[chan].is_control {
                control_outputs.push((chan, rate));
            } else {
                let occupied = match &state.channels[chan] {
                    ChannelStore::Data(ring) => ring.len() as u64,
                    ChannelStore::Control { .. } => unreachable!(),
                };
                if occupied + state.reserved[chan] + rate > self.capacities[chan] {
                    return None;
                }
                data_outputs.push((chan, rate));
            }
        }

        // 4. Commit: pop the control token and the selected inputs,
        //    reserve the outputs.
        if control_need > 0 {
            let cp = info.control_port.expect("need implies port");
            if let ChannelStore::Control { queue, .. } = &mut state.channels[cp] {
                for _ in 0..control_need {
                    queue.pop_front();
                }
            }
        }
        let inputs: Vec<PortInput> = selected
            .iter()
            .map(|&(port, chan, rate)| {
                state.selected.insert(chan);
                let tokens = match &mut state.channels[chan] {
                    ChannelStore::Data(ring) => ring.pop_many(rate as usize),
                    ChannelStore::Control { .. } => unreachable!(),
                };
                PortInput {
                    port,
                    priority: self.chans[chan].priority,
                    channel: self.chans[chan].label.clone(),
                    tokens,
                }
            })
            .collect();
        for &(chan, rate) in &data_outputs {
            state.reserved[chan] += rate;
        }
        state.in_flight[node] = true;
        state.in_flight_count += 1;

        Some(Claim {
            node,
            ordinal_total: state.fired_total[node],
            mode,
            inputs,
            data_outputs,
            control_outputs,
            deadline_missed,
            record_deadline: info.is_transaction && info.control_from_clock && control_need > 0,
        })
    }

    /// Runs the kernel computation for a claim, outside the lock.
    #[allow(clippy::type_complexity)]
    fn execute(
        &self,
        claim: Claim,
        registry: &KernelRegistry,
        _start: Instant,
    ) -> Result<(Claim, FiringContext), RuntimeError> {
        let info = &self.nodes[claim.node];
        let mut ctx = FiringContext {
            node: info.name.clone(),
            ordinal: claim.ordinal_total,
            mode: claim.mode.clone(),
            inputs: claim.inputs.clone(),
            outputs: claim
                .data_outputs
                .iter()
                .enumerate()
                .map(|(port, &(chan, rate))| PortOutput {
                    port,
                    channel: self.chans[chan].label.clone(),
                    rate,
                    tokens: Vec::new(),
                })
                .collect(),
            deadline_missed: claim.deadline_missed,
            vote_failed: false,
        };
        match registry.get(&info.name) {
            Some(behavior) => behavior.fire(&mut ctx)?,
            None if info.is_select_duplicate => fire_select_duplicate(&mut ctx),
            None if info.is_transaction => fire_transaction(&mut ctx, info.votes_required),
            None => fire_default(&mut ctx),
        }
        Ok((claim, ctx))
    }

    /// Publishes the outputs of a finished firing. Must run under the
    /// scheduler lock.
    fn complete(
        &self,
        state: &mut ExecState,
        claim: Claim,
        ctx: FiringContext,
        start: Instant,
    ) -> Result<(), RuntimeError> {
        let node = claim.node;
        let info = &self.nodes[node];

        for (port, &(chan, rate)) in claim.data_outputs.iter().enumerate() {
            let produced = &ctx.outputs[port].tokens;
            if produced.len() as u64 != rate {
                return Err(RuntimeError::RateMismatch {
                    node: info.name.clone(),
                    channel: self.chans[chan].label.clone(),
                    expected: rate,
                    got: produced.len() as u64,
                });
            }
            state.reserved[chan] -= rate;
            if let ChannelStore::Data(ring) = &mut state.channels[chan] {
                for token in produced {
                    ring.push(token.clone())?;
                }
            }
            state.tokens_pushed[chan] += rate;
        }

        let policy_mode = self
            .config
            .control_policy
            .mode_for(state.control_firings[node]);
        for &(chan, rate) in &claim.control_outputs {
            if let ChannelStore::Control { queue, high_water } = &mut state.channels[chan] {
                for _ in 0..rate {
                    queue.push_back(ControlMsg {
                        mode: policy_mode.clone(),
                    });
                }
                *high_water = (*high_water).max(queue.len() as u64);
            }
            state.tokens_pushed[chan] += rate;
        }
        if info.is_control_actor {
            state.control_firings[node] += 1;
        }

        if claim.record_deadline {
            let selected_channel = claim
                .inputs
                .first()
                .map(|p| ChannelId(info.data_inputs[p.port]));
            state.deadline_selections.push(DeadlineSelection {
                transaction: NodeId(node),
                selected_channel,
                selected_priority: claim.inputs.first().map(|p| p.priority),
                at: start.elapsed(),
            });
        }
        if ctx.deadline_missed {
            state.deadline_misses += 1;
        }
        if ctx.vote_failed {
            state.vote_failures += 1;
        }

        state.fired_iter[node] += 1;
        state.fired_total[node] += 1;
        state.in_flight[node] = false;
        state.in_flight_count -= 1;
        Ok(())
    }

    /// When every node completed its repetition count and nothing is in
    /// flight: flush rejected channels, advance (or finish) the
    /// iteration. Must run under the scheduler lock.
    fn finish_iteration_if_complete(&self, state: &mut ExecState) {
        if state.error.is_some() || state.done || state.in_flight_count > 0 {
            return;
        }
        let complete = (0..self.nodes.len()).all(|n| state.fired_iter[n] >= self.counts[n]);
        if !complete {
            return;
        }
        // Flush data channels whose consuming (controlled) port was
        // rejected for the whole iteration back to their initial state.
        for (i, info) in self.chans.iter().enumerate() {
            if info.is_control || !info.target_controlled || state.selected.contains(&i) {
                continue;
            }
            let _ = self.nodes[info.target].name; // target is a kernel with a control port
            if let ChannelStore::Data(ring) = &mut state.channels[i] {
                ring.clear();
                for _ in 0..info.initial_tokens {
                    ring.push(Token::Unit)
                        .expect("capacity covers initial tokens");
                }
            }
        }
        state.selected.clear();
        for f in &mut state.fired_iter {
            *f = 0;
        }
        state.iteration += 1;
        if state.iteration >= self.config.iterations {
            state.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;
    use tpdf_core::examples::{figure2_graph, figure4_deadlocked_graph, figure4a_graph};
    use tpdf_core::graph::TpdfGraph;
    use tpdf_core::rate::RateSeq;
    use tpdf_sim::engine::SimulationReport;

    fn binding(p: i64) -> Binding {
        Binding::from_pairs([("p", p)])
    }

    fn sim_reference(graph: &TpdfGraph, config: &RuntimeConfig) -> SimulationReport {
        Simulator::new(
            graph,
            SimulationConfig::new(config.binding.clone())
                .with_policy(config.control_policy.clone()),
        )
        .unwrap()
        .run_iterations(config.iterations)
        .unwrap()
    }

    #[test]
    fn figure2_matches_reference_across_thread_counts() {
        let g = figure2_graph();
        for threads in [1usize, 2, 4, 8] {
            let config = RuntimeConfig::new(binding(3))
                .with_threads(threads)
                .with_iterations(4);
            let reference = sim_reference(&g, &config);
            let metrics = Executor::new(&g, config)
                .unwrap()
                .run(&KernelRegistry::new())
                .unwrap();
            assert_eq!(metrics.firings, reference.firings, "threads = {threads}");
            assert_eq!(metrics.iterations, 4);
            assert_eq!(metrics.threads, threads);
            assert!(metrics.total_tokens > 0);
            assert!(metrics.tokens_per_sec > 0.0);
        }
    }

    #[test]
    fn alternate_policy_and_cycles_match_reference() {
        let g = figure2_graph();
        let config = RuntimeConfig::new(binding(2))
            .with_threads(4)
            .with_iterations(3)
            .with_policy(ControlPolicy::Alternate(vec![
                Mode::SelectOne(0),
                Mode::SelectOne(1),
            ]));
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        assert_eq!(metrics.firings, reference.firings);

        let g = figure4a_graph();
        let config = RuntimeConfig::new(binding(3))
            .with_threads(4)
            .with_iterations(2);
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        assert_eq!(metrics.firings, reference.firings);
    }

    #[test]
    fn strict_capacities_still_complete() {
        // Slack 1 sizes every ring at exactly the reference high-water
        // mark; the reservation discipline must still find a schedule.
        let g = figure2_graph();
        let config = RuntimeConfig::new(binding(4))
            .with_threads(4)
            .with_iterations(3)
            .with_capacity_slack(1);
        let reference = sim_reference(&g, &config);
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        assert_eq!(metrics.firings, reference.firings);
        for (hw, cap) in metrics
            .channel_high_water
            .iter()
            .zip(&metrics.channel_capacity)
        {
            if *cap > 0 {
                assert!(hw <= cap, "high water {hw} exceeds capacity {cap}");
            }
        }
    }

    #[test]
    fn invalid_configurations_rejected() {
        let g = figure2_graph();
        assert!(matches!(
            Executor::new(&g, RuntimeConfig::new(binding(1)).with_iterations(0)),
            Err(RuntimeError::InvalidConfig(_))
        ));
        assert!(matches!(
            Executor::new(&g, RuntimeConfig::new(Binding::new())),
            Err(RuntimeError::Analysis(_))
        ));
        // The public `threads` field can bypass with_threads' clamp.
        let mut config = RuntimeConfig::new(binding(1));
        config.threads = 0;
        assert!(matches!(
            Executor::new(&g, config),
            Err(RuntimeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn control_port_waits_for_its_full_consumption_rate() {
        // K consumes two control tokens per firing; C produces one per
        // firing and fires twice per iteration. The runtime must wait
        // for both tokens (not fire on the first), and one K firing
        // consumes both.
        let g = TpdfGraph::builder()
            .kernel("A")
            .control("C")
            .kernel("K")
            .channel("A", "C", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel("A", "K", RateSeq::constant(1), RateSeq::constant(2), 0)
            .control_channel("C", "K", RateSeq::constant(1), RateSeq::constant(2))
            .build()
            .unwrap();
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(2)
            .with_iterations(3)
            .with_policy(ControlPolicy::SelectInput(0));
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&KernelRegistry::new())
            .unwrap();
        let k = g.node_by_name("K").unwrap();
        let c = g.node_by_name("C").unwrap();
        assert_eq!(metrics.firings[k.0], 3);
        assert_eq!(metrics.firings[c.0], 6);
    }

    #[test]
    fn deadlocked_graph_reports_error() {
        let g = figure4_deadlocked_graph();
        // The reference sizing run already detects the deadlock.
        let result = Executor::new(&g, RuntimeConfig::new(binding(2)));
        assert!(matches!(result, Err(RuntimeError::Analysis(_))));
    }

    #[test]
    fn transaction_vote_selects_majority_value() {
        let g = fork_join_with_vote(3, 2);
        let mut registry = KernelRegistry::new();
        for (worker, value) in [("w0", 5i64), ("w1", 9), ("w2", 5)] {
            registry.register_fn(worker, move |ctx| {
                ctx.fill_outputs_cycling(&[Token::Int(value)]);
                Ok(())
            });
        }
        let capture = crate::cases::OutputCapture::new();
        capture.install(&mut registry, "snk");
        let config = RuntimeConfig::new(Binding::new()).with_threads(4);
        let metrics = Executor::new(&g, config).unwrap().run(&registry).unwrap();
        // w1 disagrees; the two agreeing workers (value 5) win the vote.
        assert_eq!(capture.tokens(), vec![Token::Int(5)]);
        assert_eq!(metrics.vote_failures, 0);
    }

    #[test]
    fn transaction_vote_failure_is_counted() {
        let g = fork_join_with_vote(3, 3);
        let mut registry = KernelRegistry::new();
        for (worker, value) in [("w0", 1i64), ("w1", 2), ("w2", 3)] {
            registry.register_fn(worker, move |ctx| {
                ctx.fill_outputs_cycling(&[Token::Int(value)]);
                Ok(())
            });
        }
        let config = RuntimeConfig::new(Binding::new()).with_threads(2);
        let metrics = Executor::new(&g, config).unwrap().run(&registry).unwrap();
        assert_eq!(metrics.vote_failures, 1);
    }

    /// `fork_join` with a voting Transaction: src → dup → w0..wn → tran.
    fn fork_join_with_vote(branches: usize, votes: u32) -> TpdfGraph {
        let mut b = TpdfGraph::builder()
            .kernel("src")
            .kernel_with("dup", KernelKind::SelectDuplicate, 1)
            .control("ctl")
            .kernel_with(
                "tran",
                KernelKind::Transaction {
                    votes_required: votes,
                },
                1,
            )
            .kernel("snk")
            .channel("src", "dup", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel("src", "ctl", RateSeq::constant(1), RateSeq::constant(1), 0)
            .control_channel("ctl", "tran", RateSeq::constant(1), RateSeq::constant(1))
            .channel("tran", "snk", RateSeq::constant(1), RateSeq::constant(1), 0);
        for i in 0..branches {
            let name = format!("w{i}");
            b = b
                .kernel(&name)
                .channel("dup", &name, RateSeq::constant(1), RateSeq::constant(1), 0)
                .channel_with_priority(
                    &name,
                    "tran",
                    RateSeq::constant(1),
                    RateSeq::constant(1),
                    0,
                    (i + 1) as u32,
                );
        }
        b.build().unwrap()
    }

    /// src fans out to a fast and a slow kernel; a clock-driven
    /// Transaction picks the best result available at the deadline.
    fn deadline_graph() -> TpdfGraph {
        TpdfGraph::builder()
            .kernel("src")
            .kernel("fast")
            .kernel("slow")
            .kernel_with("clock", KernelKind::Clock { period: 50 }, 0)
            .kernel_with("tran", KernelKind::Transaction { votes_required: 0 }, 1)
            .kernel("snk")
            .channel("src", "fast", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel("src", "slow", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel_with_priority(
                "fast",
                "tran",
                RateSeq::constant(1),
                RateSeq::constant(1),
                0,
                1,
            )
            .channel_with_priority(
                "slow",
                "tran",
                RateSeq::constant(1),
                RateSeq::constant(1),
                0,
                2,
            )
            .control_channel("clock", "tran", RateSeq::constant(1), RateSeq::constant(1))
            .channel("tran", "snk", RateSeq::constant(1), RateSeq::constant(1), 0)
            .build()
            .unwrap()
    }

    fn sleepy_registry(fast_ms: u64, slow_ms: u64) -> KernelRegistry {
        let mut registry = KernelRegistry::new();
        for (name, delay, value) in [("fast", fast_ms, 1i64), ("slow", slow_ms, 2)] {
            registry.register_fn(name, move |ctx| {
                std::thread::sleep(Duration::from_millis(delay));
                ctx.fill_outputs_cycling(&[Token::Int(value)]);
                Ok(())
            });
        }
        registry
    }

    #[test]
    fn real_deadline_takes_best_available_result() {
        // Clock period 50 units × 1 ms/unit = 50 ms deadline. The fast
        // kernel (10 ms) finishes before it, the slow one (250 ms) does
        // not: the Transaction must select the fast (lower-priority)
        // result at the deadline.
        let g = deadline_graph();
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(4)
            .with_policy(ControlPolicy::HighestPriority)
            .with_real_time(Duration::from_millis(1));
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&sleepy_registry(10, 250))
            .unwrap();
        assert_eq!(metrics.deadline_misses, 0);
        assert_eq!(metrics.deadline_selections.len(), 1);
        let selection = &metrics.deadline_selections[0];
        assert_eq!(selection.selected_priority, Some(1), "fast input wins");
        let fast = g.node_by_name("fast").unwrap();
        let chan = selection.selected_channel.unwrap();
        assert_eq!(g.channel(chan).source, fast);
        // The deadline fired at ≈ 50 ms, well before the slow kernel.
        assert!(
            selection.at >= Duration::from_millis(45),
            "{:?}",
            selection.at
        );
        assert!(
            selection.at < Duration::from_millis(240),
            "{:?}",
            selection.at
        );
    }

    #[test]
    fn real_deadline_miss_is_detected_and_survived() {
        // Both kernels are slower than the 50 ms deadline: the
        // Transaction fires empty at the deadline (a miss) and the sink
        // still receives a placeholder token.
        let g = deadline_graph();
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(4)
            .with_policy(ControlPolicy::HighestPriority)
            .with_real_time(Duration::from_millis(1));
        let metrics = Executor::new(&g, config)
            .unwrap()
            .run(&sleepy_registry(150, 250))
            .unwrap();
        assert_eq!(metrics.deadline_misses, 1);
        assert_eq!(metrics.deadline_selections.len(), 1);
        assert_eq!(metrics.deadline_selections[0].selected_channel, None);
        let snk = g.node_by_name("snk").unwrap();
        assert_eq!(metrics.firings[snk.0], 1);
    }
}

//! Per-worker slab arenas: recycled `Vec` firing slabs, bucketed by
//! capacity class.
//!
//! The executor moves tokens in whole-firing slabs — one `Vec<Token>`
//! per input port popped out of a ring, one per output port pushed
//! back in. Allocating those slabs fresh per firing puts the global
//! allocator on the hot path of every firing; on fine-grained graphs
//! (the regime the granularity heuristic collapses to a single
//! worker) that cost dominates the firing itself.
//!
//! A [`SlabArena`] removes it. Each worker owns one arena inside its
//! firing scratch; slabs never cross workers (the slab that carried a
//! firing's inputs is recycled by the worker that fired it — only the
//! *tokens* cross threads, through the ring slots), so the arena needs
//! no synchronisation at all. Retired slabs are kept on size-bucketed
//! freelists: class `c` holds slabs able to store at least `1 << c`
//! elements, a request for `n` elements is served from class
//! `ceil(log2 n)`, and a recycled slab files under
//! `floor(log2 capacity)` — so whatever class a request hits, every
//! slab parked there is large enough. Misses fall back to the global
//! allocator (cold start, or a ring retired at a growth barrier) and
//! allocate the full class size so the slab re-files into the same
//! class it was served from; steady-state firings therefore allocate
//! nothing.
//!
//! The arena also swallows storage retired by in-place ring growth at
//! the iteration barrier ([`crate::ring::RingBuffer::grow_reclaim`]):
//! the old slot array re-enters the freelists as an ordinary slab
//! instead of going back to the allocator.

/// Number of power-of-two capacity classes. Class indices are
/// `0..CLASS_COUNT`, so the largest class serves slabs of up to
/// `2^(CLASS_COUNT - 1)` elements — far beyond any firing rate or ring
/// capacity this runtime sizes.
const CLASS_COUNT: usize = 32;

/// Retention bound per class: a class already holding this many parked
/// slabs drops further recycles back to the allocator, so a plan
/// switch that changes the dominant slab size cannot make a worker
/// hoard the old generation forever.
const MAX_PER_CLASS: usize = 64;

/// Counters describing an arena's traffic, flushed into
/// [`crate::metrics::Metrics`] when a worker leaves its loop.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served from a freelist (no allocation).
    pub hits: u64,
    /// Requests that fell back to the global allocator.
    pub misses: u64,
    /// Slabs returned to a freelist.
    pub recycled: u64,
    /// Slabs dropped because their class was full.
    pub retired: u64,
}

/// A per-worker, single-threaded pool of reusable `Vec<T>` slabs (see
/// the [module docs](self)).
#[derive(Debug)]
pub struct SlabArena<T> {
    /// `classes[c]` parks cleared slabs with `capacity >= 1 << c`.
    classes: Vec<Vec<Vec<T>>>,
    stats: ArenaStats,
}

impl<T> Default for SlabArena<T> {
    fn default() -> Self {
        SlabArena::new()
    }
}

impl<T> SlabArena<T> {
    /// Creates an empty arena (one bookkeeping allocation; the
    /// freelists themselves materialise on first recycle).
    pub fn new() -> Self {
        let mut classes = Vec::with_capacity(CLASS_COUNT);
        classes.resize_with(CLASS_COUNT, Vec::new);
        SlabArena {
            classes,
            stats: ArenaStats::default(),
        }
    }

    /// The class serving requests for `n` elements: `ceil(log2 n)`.
    fn class_for_request(n: usize) -> usize {
        debug_assert!(n > 0);
        n.next_power_of_two().trailing_zeros() as usize
    }

    /// The class a slab of the given capacity files under:
    /// `floor(log2 capacity)` — rounding *down* keeps the invariant
    /// that every slab in class `c` holds at least `1 << c` elements.
    fn class_for_slab(capacity: usize) -> usize {
        debug_assert!(capacity > 0);
        (usize::BITS - 1 - capacity.leading_zeros()) as usize
    }

    /// An empty slab able to hold at least `capacity` elements:
    /// recycled when the matching class has one parked, freshly
    /// allocated (at the full class size, so it re-files into the same
    /// class) otherwise. `capacity == 0` returns an unallocated `Vec`
    /// without touching the freelists.
    pub fn take(&mut self, capacity: usize) -> Vec<T> {
        if capacity == 0 {
            return Vec::new();
        }
        let class = Self::class_for_request(capacity).min(CLASS_COUNT - 1);
        match self.classes[class].pop() {
            Some(slab) => {
                self.stats.hits += 1;
                debug_assert!(slab.capacity() >= capacity);
                slab
            }
            None => {
                self.stats.misses += 1;
                Vec::with_capacity(1usize << class)
            }
        }
    }

    /// Returns a slab to its capacity class. The elements still stored
    /// are dropped here (the arena only parks cleared slabs);
    /// zero-capacity slabs and overflowing classes fall through to the
    /// allocator.
    pub fn recycle(&mut self, mut slab: Vec<T>) {
        slab.clear();
        if slab.capacity() == 0 {
            return;
        }
        let class = Self::class_for_slab(slab.capacity()).min(CLASS_COUNT - 1);
        if self.classes[class].len() >= MAX_PER_CLASS {
            self.stats.retired += 1;
            return;
        }
        self.stats.recycled += 1;
        self.classes[class].push(slab);
    }

    /// The traffic counters accumulated so far.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Slabs currently parked across all classes (test visibility).
    pub fn retained(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_rounding_keeps_slabs_large_enough() {
        // Requests round up, recycles round down: whatever class a
        // request lands in, the parked slabs there satisfy it.
        assert_eq!(SlabArena::<u8>::class_for_request(1), 0);
        assert_eq!(SlabArena::<u8>::class_for_request(2), 1);
        assert_eq!(SlabArena::<u8>::class_for_request(3), 2);
        assert_eq!(SlabArena::<u8>::class_for_request(4), 2);
        assert_eq!(SlabArena::<u8>::class_for_request(5), 3);
        assert_eq!(SlabArena::<u8>::class_for_slab(1), 0);
        assert_eq!(SlabArena::<u8>::class_for_slab(3), 1);
        assert_eq!(SlabArena::<u8>::class_for_slab(4), 2);
        assert_eq!(SlabArena::<u8>::class_for_slab(7), 2);
        assert_eq!(SlabArena::<u8>::class_for_slab(8), 3);
    }

    #[test]
    fn take_recycle_round_trip_reuses_storage() {
        let mut arena: SlabArena<u32> = SlabArena::new();
        let mut slab = arena.take(12);
        assert!(slab.capacity() >= 12);
        assert_eq!(arena.stats().misses, 1);
        slab.extend(0..12);
        let ptr = slab.as_ptr();
        arena.recycle(slab);
        assert_eq!(arena.stats().recycled, 1);
        assert_eq!(arena.retained(), 1);
        // The same request class gets the same allocation back, empty.
        let again = arena.take(12);
        assert_eq!(again.as_ptr(), ptr, "storage was reused, not reallocated");
        assert!(again.is_empty(), "recycled slabs come back cleared");
        assert_eq!(arena.stats().hits, 1);
        assert_eq!(arena.retained(), 0);
    }

    #[test]
    fn smaller_requests_ride_larger_recycled_slabs_only_when_classed() {
        let mut arena: SlabArena<u32> = SlabArena::new();
        // A 16-capacity slab files under class 4 and serves 9..=16.
        arena.recycle(Vec::with_capacity(16));
        let slab = arena.take(9);
        assert!(slab.capacity() >= 9);
        assert_eq!(arena.stats().hits, 1);
        // An 8-element request looks in class 3, which is empty.
        arena.recycle(slab);
        let fresh = arena.take(8);
        assert!(fresh.capacity() >= 8);
        assert_eq!(arena.stats().misses, 1);
    }

    #[test]
    fn zero_capacity_requests_and_slabs_skip_the_freelists() {
        let mut arena: SlabArena<u32> = SlabArena::new();
        let empty = arena.take(0);
        assert_eq!(empty.capacity(), 0);
        arena.recycle(Vec::new());
        assert_eq!(arena.stats(), ArenaStats::default());
        assert_eq!(arena.retained(), 0);
    }

    #[test]
    fn recycle_drops_remaining_elements() {
        use std::sync::Arc;
        let payload = Arc::new(5u32);
        let mut arena: SlabArena<Arc<u32>> = SlabArena::new();
        let mut slab = arena.take(4);
        slab.extend((0..4).map(|_| Arc::clone(&payload)));
        assert_eq!(Arc::strong_count(&payload), 5);
        arena.recycle(slab);
        assert_eq!(Arc::strong_count(&payload), 1, "recycling drops tokens");
        assert!(arena.take(4).is_empty());
    }

    #[test]
    fn full_classes_retire_instead_of_hoarding() {
        let mut arena: SlabArena<u8> = SlabArena::new();
        for _ in 0..MAX_PER_CLASS {
            arena.recycle(Vec::with_capacity(8));
        }
        assert_eq!(arena.retained(), MAX_PER_CLASS);
        arena.recycle(Vec::with_capacity(8));
        assert_eq!(arena.stats().retired, 1);
        assert_eq!(arena.retained(), MAX_PER_CLASS);
    }

    #[test]
    fn steady_state_loop_stops_missing_after_warmup() {
        let mut arena: SlabArena<u64> = SlabArena::new();
        for round in 0..100 {
            let mut a = arena.take(3);
            let mut b = arena.take(17);
            a.extend(0..3);
            b.extend(0..17);
            arena.recycle(a);
            arena.recycle(b);
            if round == 0 {
                assert_eq!(arena.stats().misses, 2);
            }
        }
        let stats = arena.stats();
        assert_eq!(stats.misses, 2, "only the cold start allocates");
        assert_eq!(stats.hits, 2 * 99);
        assert_eq!(stats.recycled, 2 * 100);
    }
}

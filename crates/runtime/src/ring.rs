//! Lock-free SPSC ring buffers backing the channels of the runtime.
//!
//! Every TPDF channel has exactly one producer node and one consumer
//! node, and the executor guarantees each node runs at most one firing
//! at a time — so a single-producer single-consumer discipline is
//! sufficient, and each channel can be a wait-free ring with two atomic
//! cursors instead of a structure guarded by the scheduler lock:
//!
//! * `tail` is written only by the producer (the worker currently
//!   holding the claim on the producing node);
//! * `head` is written only by the consumer (the worker holding the
//!   claim on the consuming node);
//! * both sides communicate through `Release` stores and `Acquire`
//!   loads of the opposite cursor, the classic SPSC protocol.
//!
//! Token movement is batched: [`RingBuffer::push_from`] drains a whole
//! firing's output slab into the ring and [`RingBuffer::pop_into`]
//! moves a whole consumption quantum out, so the per-token cost is one
//! slot write/read, not a `Vec` push behind a lock.
//!
//! Capacities come from the `tpdf-sim` buffer analysis (per-channel
//! high-water marks of a reference execution — see
//! [`crate::executor::Executor`]). The executor checks free space
//! before claiming a firing and it is the sole producer of its output
//! rings while the claim is held, so `push_from` on a well-formed
//! execution can never overflow; an overflow therefore reports a bug,
//! not a transient condition.
//!
//! This module is the only place in the crate that uses `unsafe`: the
//! slot array is `UnsafeCell<MaybeUninit<T>>` and the cursor protocol
//! is what makes the accesses disjoint. The invariants are spelled out
//! on each unsafe block and exercised by a cross-thread property test.

#![allow(unsafe_code)]

use crate::RuntimeError;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A bounded lock-free SPSC FIFO over a circular array.
///
/// Cursors are monotonically increasing counters (wrapping at
/// `usize::MAX`, which a run cannot reach); the slot index of a cursor
/// value `c` is `c % capacity`. `tail - head` is therefore always the
/// exact occupancy.
pub struct RingBuffer<T> {
    label: Arc<str>,
    /// The slot array, behind one more `UnsafeCell` so the iteration
    /// barrier can grow it in place through `&self`
    /// ([`RingBuffer::grow`] documents the required quiescence).
    slots: UnsafeCell<Box<[UnsafeCell<MaybeUninit<T>>]>>,
    /// Slot count, mirrored out of `slots` so readers never touch the
    /// growable allocation.
    cap: AtomicUsize,
    /// Consumer cursor: next slot to read. Written only by the consumer.
    head: AtomicUsize,
    /// Producer cursor: next slot to write. Written only by the producer.
    tail: AtomicUsize,
    /// Linearizable occupancy counter: incremented by the producer right
    /// after publishing a batch, decremented by the consumer right
    /// before taking one. Transiently negative (a pop may be counted
    /// before the push that supplied it), hence signed.
    occupancy: AtomicI64,
    /// Highest occupancy *certified* by the counter: every recorded
    /// value is ≤ the true occupancy at the moment of its RMW, so the
    /// mark never reports a peak that did not happen (a producer-side
    /// `tail - stale_head` reading could).
    high_water: AtomicUsize,
}

// SAFETY: the SPSC protocol partitions slot accesses — the producer
// only writes slots in `[tail, head + capacity)` and the consumer only
// reads slots in `[head, tail)`, with the cursor publication
// (Release/Acquire) ordering the data accesses. `T: Send` is required
// because values move across the producer→consumer thread boundary.
unsafe impl<T: Send> Send for RingBuffer<T> {}
unsafe impl<T: Send> Sync for RingBuffer<T> {}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(label: impl Into<Arc<str>>, capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            label: label.into(),
            slots: UnsafeCell::new(
                (0..capacity)
                    .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                    .collect(),
            ),
            cap: AtomicUsize::new(capacity),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            occupancy: AtomicI64::new(0),
            high_water: AtomicUsize::new(0),
        }
    }

    /// The channel label this ring backs.
    pub fn label(&self) -> &Arc<str> {
        &self.label
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.cap.load(Ordering::Relaxed)
    }

    /// The slot at cursor `c`.
    ///
    /// # Safety
    ///
    /// The caller must hold the side-ownership the cursor protocol
    /// grants it (producer for unpublished slots, consumer for published
    /// ones) and no concurrent [`RingBuffer::grow`] may be running.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slot(&self, c: usize) -> &mut MaybeUninit<T> {
        let slots = &*self.slots.get();
        &mut *slots[c % slots.len()].get()
    }

    /// Base pointer of the slot array viewed as raw `T` storage, for
    /// the batch `memcpy` paths: `UnsafeCell<MaybeUninit<T>>` is
    /// documented to have the same in-memory representation as `T`
    /// (both wrappers are `repr(transparent)`), so the slot array *is*
    /// a `[T; capacity]` whose initialised range the cursors describe.
    ///
    /// # Safety
    ///
    /// Same contract as [`RingBuffer::slot`]: the caller may only touch
    /// the slots its side of the cursor protocol owns, and no
    /// concurrent [`RingBuffer::grow`] may be running.
    unsafe fn base_ptr(&self) -> *mut T {
        (*self.slots.get()).as_ptr() as *mut T
    }

    /// Current number of elements.
    ///
    /// Exact from the consumer side (its own `head` plus a published
    /// `tail` that can only have grown) and an over-approximation
    /// clamped to the capacity from anywhere else — a third-party
    /// reader racing both cursors cannot observe a coherent pair, so
    /// only the owning sides should base decisions on this. The
    /// executor only ever needs the consumer-side reading ("at least
    /// `rate` tokens are available").
    pub fn len(&self) -> usize {
        // Head is loaded first: the producer validates `tail` against
        // a head no newer than this one, so `tail - head` cannot wrap
        // below zero whoever calls.
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head).min(self.capacity())
    }

    /// Returns `true` when no element is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots remaining.
    ///
    /// Exact from the producer side (only the consumer can free space)
    /// and a clamped under-approximation from anywhere else (see
    /// [`RingBuffer::len`]).
    pub fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Highest occupancy *certified to have existed*: both sides feed a
    /// linearizable occupancy counter (producer increments after
    /// publishing, consumer decrements before taking), and the mark is
    /// the maximum value the counter ever took. Unlike a producer-side
    /// `tail - head` reading against a possibly-stale consumer cursor,
    /// this can never report an occupancy that never happened; a pop
    /// racing a push can hide a transient peak by at most the pop's
    /// batch size, and with either side quiescent the mark is exact.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Appends one element. **Producer side.**
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::CapacityExceeded`] when the ring is full.
    pub fn push(&self, value: T) -> Result<(), RuntimeError> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.capacity() {
            return Err(self.overflow());
        }
        // SAFETY: slot `tail % capacity` is outside `[head, tail)`, so
        // the consumer will not touch it until the Release store below
        // publishes it; we are the unique producer.
        unsafe {
            self.slot(tail).write(value);
        }
        self.publish(tail, 1);
        Ok(())
    }

    /// Drains every element of `slab` into the ring, preserving order.
    /// One call moves a whole firing's worth of tokens. **Producer
    /// side.**
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::CapacityExceeded`] (and leaves both the
    /// ring and `slab` untouched) when fewer than `slab.len()` slots
    /// are free.
    pub fn push_from(&self, slab: &mut Vec<T>) -> Result<(), RuntimeError> {
        let n = slab.len();
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.capacity();
        if capacity - tail.wrapping_sub(head) < n {
            return Err(self.overflow());
        }
        // The batch occupies at most two contiguous slot segments (one
        // wraparound split), each moved as a single memcpy.
        //
        // SAFETY: slots `tail..tail + n` are free (checked above) and
        // invisible to the consumer until `tail` is published; the slab
        // elements are bitwise-moved into them (`set_len(0)` forgets
        // the sources, so nothing double-drops), and `base_ptr`'s
        // layout argument makes the raw copy well-typed.
        unsafe {
            let base = self.base_ptr();
            let start = tail % capacity;
            let first = n.min(capacity - start);
            std::ptr::copy_nonoverlapping(slab.as_ptr(), base.add(start), first);
            std::ptr::copy_nonoverlapping(slab.as_ptr().add(first), base, n - first);
            slab.set_len(0);
        }
        self.publish(tail, n);
        Ok(())
    }

    /// Publishes `n` freshly written slots and feeds the certified
    /// high-water mark. **Producer side.**
    fn publish(&self, tail: usize, n: usize) {
        self.tail.store(tail.wrapping_add(n), Ordering::Release);
        // The counter value right after this RMW is ≤ the true
        // occupancy at the same instant (the batch is already
        // published; any pop counted against it has not necessarily
        // happened yet), so recording it never invents a peak.
        let occupancy = self.occupancy.fetch_add(n as i64, Ordering::Relaxed) + n as i64;
        if occupancy > 0 {
            self.high_water
                .fetch_max(occupancy as usize, Ordering::Relaxed);
        }
    }

    /// Removes and returns the oldest element, or `None` when empty.
    /// **Consumer side.**
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        // Count the take before it happens: the certified occupancy can
        // only ever lag below the truth, never run ahead of it.
        self.occupancy.fetch_sub(1, Ordering::Relaxed);
        // SAFETY: slot `head % capacity` was published by the producer
        // (tail > head under the Acquire load) and we are the unique
        // consumer; the value is moved out exactly once because `head`
        // advances past it below.
        let value = unsafe { self.slot(head).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Moves the `count` oldest elements into `out` (appended in FIFO
    /// order) as one batch. **Consumer side.**
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` elements are stored; the executor
    /// checks availability before claiming a firing.
    pub fn pop_into(&self, count: usize, out: &mut Vec<T>) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let available = tail.wrapping_sub(head);
        assert!(
            available >= count,
            "ring {} underflow: {available} < {count}",
            self.label
        );
        self.occupancy.fetch_sub(count as i64, Ordering::Relaxed);
        out.reserve(count);
        let capacity = self.capacity();
        // SAFETY: slots `head..head + count` are published (checked
        // above) and span at most two contiguous segments; each value
        // is bitwise-moved out exactly once into `out`'s reserved spare
        // capacity (`set_len` claims them only after the copies), then
        // released by the single `head` advance below.
        unsafe {
            let base = self.base_ptr();
            let dst = out.as_mut_ptr().add(out.len());
            let start = head % capacity;
            let first = count.min(capacity - start);
            std::ptr::copy_nonoverlapping(base.add(start), dst, first);
            std::ptr::copy_nonoverlapping(base, dst.add(first), count - first);
            out.set_len(out.len() + count);
        }
        self.head.store(head.wrapping_add(count), Ordering::Release);
    }

    /// Discards every stored element, returning how many were dropped.
    ///
    /// Only safe to call while no producer is active (the executor uses
    /// it inside the iteration barrier, where every node has exhausted
    /// its firing budget).
    pub fn clear(&self) -> usize {
        let mut dropped = 0;
        while self.pop().is_some() {
            dropped += 1;
        }
        dropped
    }

    /// Grows the ring in place to `new_capacity` slots, preserving the
    /// stored elements, their FIFO order and both cursors. Returns the
    /// capacity the ring had before the call — equal to `new_capacity`
    /// only if nothing changed, which is how the barrier's trace
    /// instrumentation distinguishes a real growth from a no-op. A
    /// no-op when `new_capacity` does not exceed the current capacity —
    /// rings never shrink, so a parameter rebinding can only relax the
    /// backpressure an in-flight producer relies on, never invalidate
    /// it.
    ///
    /// **Quiescence required:** the caller must guarantee that no
    /// producer or consumer touches the ring for the duration of the
    /// call. The executor calls this only inside the iteration barrier,
    /// where every firing budget is exhausted (zero) and therefore no
    /// worker can pass the claim gate; the barrier republishes the
    /// budgets with `Release` stores afterwards, which is what makes the
    /// new slot array visible to the next claimants. The SPSC invariants
    /// survive: cursors keep their values, and because the slot index of
    /// cursor `c` is `c % capacity`, the elements are re-homed to their
    /// new slots during the copy.
    pub fn grow(&self, new_capacity: usize) -> usize {
        self.grow_reclaim(new_capacity).0
    }

    /// [`RingBuffer::grow`] that additionally hands the *retired* slot
    /// array back to the caller as an empty `Vec<T>` with the old
    /// capacity — ready for a slab arena to recycle instead of going
    /// straight back to the allocator. Returns the previous capacity
    /// and, when a growth actually happened, the reclaimed storage.
    ///
    /// Same quiescence contract as [`RingBuffer::grow`].
    pub fn grow_reclaim(&self, new_capacity: usize) -> (usize, Option<Vec<T>>) {
        let old_capacity = self.capacity();
        if new_capacity <= old_capacity {
            return (old_capacity, None);
        }
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        let new_slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..new_capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        // SAFETY: quiescence (caller contract) makes this thread the
        // only one touching the slot array; every cursor in `[head,
        // tail)` indexes a published, initialised slot, and each value
        // is moved exactly once — the old array is then reinterpreted
        // as *empty* `Vec<T>` storage, so nothing double-drops.
        let retired = unsafe {
            let old_slots = std::mem::replace(&mut *self.slots.get(), new_slots);
            let installed = &*self.slots.get();
            let mut c = head;
            while c != tail {
                let value = (*old_slots[c % old_capacity].get()).assume_init_read();
                (*installed[c % new_capacity].get()).write(value);
                c = c.wrapping_add(1);
            }
            // `UnsafeCell<MaybeUninit<T>>` has `T`'s layout (see
            // `base_ptr`), so the boxed slice's allocation — made by
            // the global allocator with `old_capacity * size_of::<T>()`
            // bytes at `T`'s alignment — is exactly what a `Vec<T>`
            // with that capacity owns; length 0 because every element
            // was moved out above.
            let ptr = Box::into_raw(old_slots).cast::<T>();
            Vec::from_raw_parts(ptr, 0, old_capacity)
        };
        self.cap.store(new_capacity, Ordering::Release);
        (old_capacity, Some(retired))
    }
}

impl<T: Clone> RingBuffer<T> {
    /// Clones the oldest element without removing it, or `None` when
    /// empty. **Consumer side** — the executor peeks the mode of the
    /// front control token before deciding whether a firing can go
    /// ahead.
    pub fn peek_clone(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        // SAFETY: the slot is published and stays valid: only this
        // consumer can advance `head` past it.
        let value = unsafe { self.slot(head).assume_init_ref() };
        Some(value.clone())
    }

    /// Pushes `count` clones of `value`. **Producer side.**
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::CapacityExceeded`] when fewer than
    /// `count` slots are free; no element is pushed in that case.
    pub fn push_clones(&self, value: &T, count: usize) -> Result<(), RuntimeError> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if self.capacity() - tail.wrapping_sub(head) < count {
            return Err(self.overflow());
        }
        for i in 0..count {
            // SAFETY: as in `push_from`.
            unsafe {
                self.slot(tail.wrapping_add(i)).write(value.clone());
            }
        }
        self.publish(tail, count);
        Ok(())
    }

    /// Clones every live element, oldest first, without consuming any.
    ///
    /// **Quiescent point only** — same contract as
    /// [`RingBuffer::grow_reclaim`]: the caller must guarantee that no
    /// producer or consumer is concurrently active (the executor calls
    /// this when checkpointing at an iteration barrier, after every
    /// worker has halted). Slots between `head` and `tail` are then
    /// stable initialized values that can be read through `&self`.
    pub fn snapshot_contents(&self) -> Vec<T> {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        let mut out = Vec::with_capacity(tail.wrapping_sub(head));
        let mut cursor = head;
        while cursor != tail {
            // SAFETY: quiescence (caller contract) means the slot was
            // published by a producer and not yet consumed; nobody
            // mutates it while we read.
            out.push(unsafe { self.slot(cursor).assume_init_ref().clone() });
            cursor = cursor.wrapping_add(1);
        }
        out
    }
}

impl<T> RingBuffer<T> {
    fn overflow(&self) -> RuntimeError {
        RuntimeError::CapacityExceeded {
            channel: self.label.to_string(),
            capacity: self.capacity() as u64,
        }
    }
}

impl<T> Drop for RingBuffer<T> {
    fn drop(&mut self) {
        // Drop any elements still stored (exclusive access via &mut).
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for RingBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBuffer")
            .field("label", &self.label)
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .field("high_water", &self.high_water())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(r: &RingBuffer<u32>, count: usize) -> Vec<u32> {
        let mut out = Vec::new();
        r.pop_into(count, &mut out);
        out
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let r: RingBuffer<u32> = RingBuffer::new("e1", 3);
        assert_eq!(r.capacity(), 3);
        assert!(r.is_empty());
        r.push_from(&mut vec![1, 2]).unwrap();
        assert_eq!(r.pop(), Some(1));
        r.push_from(&mut vec![3, 4]).unwrap();
        // Wrapped around the backing array.
        assert_eq!(drain(&r, 3), vec![2, 3, 4]);
        assert!(r.pop().is_none());
        assert_eq!(r.high_water(), 3);
    }

    #[test]
    fn push_full_errors_and_preserves_content() {
        let r: RingBuffer<u32> = RingBuffer::new("e2", 2);
        r.push(1).unwrap();
        let mut slab = vec![2, 3];
        assert!(matches!(
            r.push_from(&mut slab),
            Err(RuntimeError::CapacityExceeded { .. })
        ));
        // The failed batch push must leave both sides untouched.
        assert_eq!(slab, vec![2, 3]);
        assert_eq!(r.len(), 1);
        assert!(matches!(
            r.push_clones(&9, 2),
            Err(RuntimeError::CapacityExceeded { .. })
        ));
        r.push(2).unwrap();
        assert_eq!(r.free(), 0);
        assert!(matches!(
            r.push(3),
            Err(RuntimeError::CapacityExceeded { .. })
        ));
        assert_eq!(drain(&r, 2), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn pop_into_underflow_panics() {
        let r: RingBuffer<u32> = RingBuffer::new("e3", 2);
        r.push(7).unwrap();
        let mut out = Vec::new();
        r.pop_into(2, &mut out);
    }

    #[test]
    fn peek_does_not_consume() {
        let r: RingBuffer<u32> = RingBuffer::new("e4", 4);
        assert_eq!(r.peek_clone(), None);
        r.push_clones(&5, 3).unwrap();
        assert_eq!(r.peek_clone(), Some(5));
        assert_eq!(r.len(), 3);
        assert_eq!(r.clear(), 3);
        assert!(r.is_empty());
        assert_eq!(r.high_water(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: RingBuffer<u32> = RingBuffer::new("e5", 0);
    }

    #[test]
    fn grow_preserves_content_cursors_and_order() {
        let r: RingBuffer<u32> = RingBuffer::new("g1", 3);
        r.push_from(&mut vec![1, 2, 3]).unwrap();
        assert_eq!(r.pop(), Some(1));
        r.push(4).unwrap(); // wrapped: slots now [4, 2, 3] with head = 1
        assert_eq!(r.len(), 3);
        r.grow(7);
        assert_eq!(r.capacity(), 7);
        assert_eq!(r.len(), 3, "occupancy survives growth");
        // The freed space is usable immediately.
        r.push_from(&mut vec![5, 6, 7, 8]).unwrap();
        assert_eq!(drain(&r, 7), vec![2, 3, 4, 5, 6, 7, 8]);
        // Shrinking (or equal) requests are no-ops.
        r.grow(2);
        assert_eq!(r.capacity(), 7);
    }

    #[test]
    fn grow_after_heavy_wraparound_rehomes_elements() {
        let r: RingBuffer<u32> = RingBuffer::new("g2", 2);
        // Advance the cursors far past the capacity.
        for i in 0..1000u32 {
            r.push(i).unwrap();
            assert_eq!(r.pop(), Some(i));
        }
        r.push_from(&mut vec![1000, 1001]).unwrap();
        r.grow(5);
        r.push_from(&mut vec![1002, 1003, 1004]).unwrap();
        assert_eq!(drain(&r, 5), vec![1000, 1001, 1002, 1003, 1004]);
        assert!(r.is_empty());
    }

    #[test]
    fn grow_reclaim_returns_the_retired_storage() {
        let r: RingBuffer<u32> = RingBuffer::new("g4", 4);
        r.push_from(&mut vec![1, 2]).unwrap();
        let (old, retired) = r.grow_reclaim(9);
        assert_eq!(old, 4);
        let mut storage = retired.expect("growth retires the old slot array");
        assert_eq!(storage.len(), 0, "reclaimed storage is empty");
        assert_eq!(storage.capacity(), 4, "and keeps the old capacity");
        storage.extend([7, 8, 9, 10]); // usable as an ordinary Vec
        assert_eq!(storage, vec![7, 8, 9, 10]);
        assert_eq!(drain(&r, 2), vec![1, 2]);
        // No-op growths reclaim nothing.
        let (old, retired) = r.grow_reclaim(9);
        assert_eq!((old, retired.is_some()), (9, false));
    }

    #[test]
    fn batch_transfer_wraparound_with_refcounted_elements() {
        // The two-segment memcpy paths must move ownership exactly once
        // even when a batch wraps; Arc counts make duplication or loss
        // observable.
        let payload = Arc::new(1u32);
        let r: RingBuffer<Arc<u32>> = RingBuffer::new("g5", 3);
        r.push(Arc::clone(&payload)).unwrap();
        r.pop();
        let mut slab = vec![
            Arc::clone(&payload),
            Arc::clone(&payload),
            Arc::clone(&payload),
        ];
        r.push_from(&mut slab).unwrap(); // wraps the backing array
        assert!(slab.is_empty());
        assert_eq!(Arc::strong_count(&payload), 4);
        let mut out = Vec::new();
        r.pop_into(3, &mut out);
        assert_eq!(Arc::strong_count(&payload), 4);
        drop(out);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn grow_releases_no_element_twice() {
        // Arc counts make double-drops (or leaks) observable through
        // the grow + drop path.
        let payload = Arc::new(7u32);
        let r: RingBuffer<Arc<u32>> = RingBuffer::new("g3", 2);
        r.push_clones(&payload, 2).unwrap();
        r.grow(6);
        r.push_clones(&payload, 3).unwrap();
        assert_eq!(Arc::strong_count(&payload), 6);
        assert_eq!(r.pop().as_deref(), Some(&7));
        assert_eq!(Arc::strong_count(&payload), 5);
        drop(r);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn drop_releases_stored_elements() {
        // Arc strong counts make element drops observable.
        let payload = Arc::new(42u32);
        let r: RingBuffer<Arc<u32>> = RingBuffer::new("e6", 4);
        r.push_clones(&payload, 3).unwrap();
        assert_eq!(Arc::strong_count(&payload), 4);
        drop(r);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn concurrent_producer_consumer_preserves_fifo() {
        // Deterministic smoke version of the property test below: one
        // producer pushing batches, one consumer popping batches, no
        // element lost, duplicated or reordered.
        let r: RingBuffer<u64> = RingBuffer::new("spsc", 7);
        let total: u64 = 10_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut next = 0u64;
                let mut slab = Vec::new();
                while next < total {
                    let batch = (1 + next % 5).min(total - next) as usize;
                    slab.clear();
                    slab.extend((0..batch as u64).map(|i| next + i));
                    while r.free() < batch {
                        std::thread::yield_now();
                    }
                    r.push_from(&mut slab).unwrap();
                    next += batch as u64;
                }
            });
            let mut received = Vec::with_capacity(total as usize);
            while received.len() < total as usize {
                // Wait for at least one token, then take what is there
                // (capped): demanding more than the producer can fit
                // into the remaining ring space would deadlock.
                let mut available = r.len();
                while available == 0 {
                    std::thread::yield_now();
                    available = r.len();
                }
                let want = (1 + received.len() % 4)
                    .min(total as usize - received.len())
                    .min(available);
                r.pop_into(want, &mut received);
            }
            assert_eq!(received, (0..total).collect::<Vec<_>>());
        });
        assert!(r.is_empty());
        assert!(r.high_water() <= 7);
    }
}

//! Fixed-capacity ring buffers backing the data channels of the runtime.
//!
//! Each data channel of an executing graph is one [`RingBuffer`] whose
//! capacity comes from the `tpdf-sim` buffer analysis (the per-channel
//! high-water marks of a reference execution — see
//! [`crate::executor::Executor`]). The executor reserves output space
//! when it claims a firing, so `push` on a well-formed execution can
//! never overflow; an overflow therefore reports a bug, not a transient
//! condition.

use crate::RuntimeError;

/// A bounded FIFO over a circular array.
///
/// Single-owner discipline: the executor mutates rings only while
/// holding its scheduler lock, so the ring itself needs no interior
/// synchronisation.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    label: String,
    slots: Vec<Option<T>>,
    head: usize,
    len: usize,
    high_water: usize,
}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(label: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            label: label.into(),
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// The channel label this ring backs.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no element is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity() - self.len
    }

    /// Highest occupancy observed so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Appends one element.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::CapacityExceeded`] when the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), RuntimeError> {
        if self.len == self.capacity() {
            return Err(RuntimeError::CapacityExceeded {
                channel: self.label.clone(),
                capacity: self.capacity() as u64,
            });
        }
        let tail = (self.head + self.len) % self.capacity();
        self.slots[tail] = Some(value);
        self.len += 1;
        self.high_water = self.high_water.max(self.len);
        Ok(())
    }

    /// Removes and returns the oldest element, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.slots[self.head].take();
        self.head = (self.head + 1) % self.capacity();
        self.len -= 1;
        value
    }

    /// Removes and returns the `count` oldest elements.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `count` elements are stored; the executor
    /// checks availability before claiming a firing.
    pub fn pop_many(&mut self, count: usize) -> Vec<T> {
        assert!(
            self.len >= count,
            "ring {} underflow: {} < {count}",
            self.label,
            self.len
        );
        (0..count)
            .map(|_| self.pop().expect("length checked"))
            .collect()
    }

    /// Discards every stored element, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        let dropped = self.len;
        while self.pop().is_some() {}
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_wraparound() {
        let mut r: RingBuffer<u32> = RingBuffer::new("e1", 3);
        assert_eq!(r.capacity(), 3);
        assert!(r.is_empty());
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.pop(), Some(1));
        r.push(3).unwrap();
        r.push(4).unwrap();
        // Wrapped around the backing array.
        assert_eq!(r.pop_many(3), vec![2, 3, 4]);
        assert!(r.pop().is_none());
        assert_eq!(r.high_water(), 3);
    }

    #[test]
    fn push_full_errors() {
        let mut r: RingBuffer<u32> = RingBuffer::new("e2", 1);
        r.push(1).unwrap();
        assert_eq!(r.free(), 0);
        assert!(matches!(
            r.push(2),
            Err(RuntimeError::CapacityExceeded { .. })
        ));
        // The failed push must not corrupt the stored element.
        assert_eq!(r.pop(), Some(1));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn pop_many_underflow_panics() {
        let mut r: RingBuffer<u32> = RingBuffer::new("e3", 2);
        r.pop_many(1);
    }

    #[test]
    fn clear_empties() {
        let mut r: RingBuffer<u32> = RingBuffer::new("e4", 4);
        r.push(1).unwrap();
        r.push(2).unwrap();
        assert_eq!(r.clear(), 2);
        assert!(r.is_empty());
        assert_eq!(r.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: RingBuffer<u32> = RingBuffer::new("e5", 0);
    }
}

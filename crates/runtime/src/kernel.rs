//! Executable kernel behaviours and the paper's special kernels.
//!
//! The graph (`tpdf_core::TpdfGraph`) says *when* a kernel may fire and
//! at which rates; a [`KernelBehavior`] says *what the firing computes*.
//! Applications register a behaviour per node name in a
//! [`KernelRegistry`]; nodes without a registered behaviour get the
//! built-in semantics:
//!
//! * **Select-Duplicate** kernels copy their input stream to every
//!   output selected by the current mode (speculation / forking — the
//!   copies are `Clone`s of [`Token`], so images are shared, not
//!   duplicated).
//! * **Transaction** kernels forward the tokens of the highest-priority
//!   input that participated in the firing; with `votes_required > 0`
//!   they first look for `votes_required` inputs that agree
//!   (redundancy with vote).
//! * **Regular** kernels and control actors forward their concatenated
//!   input tokens cyclically to each output (or emit [`Token::Unit`]
//!   markers when the firing consumed nothing), which keeps rate-only
//!   graphs — e.g. the Figure 2 running example — executable without any
//!   registration.

use crate::token::Token;
use crate::RuntimeError;
use std::collections::BTreeMap;
use std::sync::Arc;
use tpdf_core::mode::Mode;

/// The tokens one data-input port contributed to a firing.
///
/// `tokens` is one contiguous slab moved out of the channel ring as a
/// batch ([`crate::ring::RingBuffer::pop_into`]) — behaviours read it
/// as a slice, they never see per-element channel traffic.
#[derive(Debug, Clone)]
pub struct PortInput {
    /// Port index among the kernel's data inputs (declaration order).
    pub port: usize,
    /// Priority `α` of the port (higher wins Transaction selection).
    pub priority: u32,
    /// Channel label (e.g. `e6`), for diagnostics. Shared, not copied,
    /// so building a firing context costs no string allocation.
    pub channel: Arc<str>,
    /// The consumed tokens, oldest first.
    pub tokens: Vec<Token>,
}

impl PortInput {
    /// The consumed tokens as a slice.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }
}

/// One data-output port a firing must fill.
///
/// `tokens` becomes the slab pushed into the channel ring as one batch
/// ([`crate::ring::RingBuffer::push_from`]) when the firing completes.
#[derive(Debug, Clone)]
pub struct PortOutput {
    /// Port index among the kernel's data outputs (declaration order).
    pub port: usize,
    /// Channel label, for diagnostics. Shared, not copied.
    pub channel: Arc<str>,
    /// Number of tokens the firing must produce on this port.
    pub rate: u64,
    /// The produced tokens; must contain exactly `rate` tokens when the
    /// behaviour returns (pre-allocated to that capacity).
    pub tokens: Vec<Token>,
}

impl PortOutput {
    /// Replaces the port's tokens with clones of `slice` cycled to the
    /// required rate.
    pub fn write_cycled(&mut self, slice: &[Token]) {
        self.tokens.clear();
        write_cycled_into(&mut self.tokens, slice, self.rate);
    }
}

/// Everything a kernel behaviour sees and produces during one firing.
#[derive(Debug)]
pub struct FiringContext {
    /// Node name. Shared, not copied.
    pub node: Arc<str>,
    /// Global firing ordinal of this node (across iterations).
    pub ordinal: u64,
    /// The mode this firing executes in (from the control token, or
    /// [`Mode::WaitAll`] for unsteered kernels).
    pub mode: Mode,
    /// Data consumed, one entry per *selected* input port.
    pub inputs: Vec<PortInput>,
    /// Data to produce, one entry per output port of this firing.
    pub outputs: Vec<PortOutput>,
    /// Set by the executor when a real-time deadline forced this firing
    /// before any input was available.
    pub deadline_missed: bool,
    /// Set by the built-in Transaction behaviour when a vote could not
    /// reach `votes_required` agreeing inputs.
    pub vote_failed: bool,
    /// The mode this firing's control tokens carry, when the behaviour
    /// chose one itself (see [`FiringContext::set_mode`]). `None` lets
    /// the executor compute the mode from the configured
    /// [`tpdf_core::control::ModeSelector`].
    pub emitted_mode: Option<Mode>,
}

impl FiringContext {
    /// The input entry of data port `port`, if it participated in this
    /// firing.
    pub fn input(&self, port: usize) -> Option<&PortInput> {
        self.inputs.iter().find(|p| p.port == port)
    }

    /// The token slab of data port `port`; empty when the port did not
    /// participate in this firing. Zero-copy: a slice view of the slab
    /// popped from the channel ring.
    pub fn input_tokens(&self, port: usize) -> &[Token] {
        self.input(port).map(|p| p.tokens.as_slice()).unwrap_or(&[])
    }

    /// All consumed tokens, port after port, oldest first.
    ///
    /// This allocates a fresh concatenation; behaviours reading a
    /// single port should use [`FiringContext::input_tokens`] instead.
    pub fn concatenated_inputs(&self) -> Vec<Token> {
        self.inputs
            .iter()
            .flat_map(|p| p.tokens.iter().cloned())
            .collect()
    }

    /// The scalar views of every consumed token, port after port, oldest
    /// first — the inputs a data-dependent mode selector reacts to.
    pub fn input_scalars(&self) -> Vec<i64> {
        let mut out = Vec::new();
        self.input_scalars_into(&mut out);
        out
    }

    /// Appends the scalar views of every consumed token to `out` — the
    /// allocation-free form of [`FiringContext::input_scalars`] the
    /// executor feeds from a reused per-worker buffer.
    pub fn input_scalars_into(&self, out: &mut Vec<i64>) {
        for p in &self.inputs {
            out.extend(p.tokens.iter().map(Token::as_scalar));
        }
    }

    /// Makes this firing's control tokens carry `mode`, overriding the
    /// executor's configured mode selector. Only meaningful for control
    /// actors (nodes with control outputs); cross-validation against
    /// `tpdf-sim` requires an equivalent selector + value trace on the
    /// simulation side.
    pub fn set_mode(&mut self, mode: Mode) {
        self.emitted_mode = Some(mode);
    }

    /// Fills every output port by cycling through `source` (or with
    /// [`Token::Unit`] markers when `source` is empty).
    pub fn fill_outputs_cycling(&mut self, source: &[Token]) {
        for out in &mut self.outputs {
            out.write_cycled(source);
        }
    }

    /// Fills every output port by cycling through the concatenated
    /// input stream *without materialising the concatenation* — the
    /// built-in forwarding semantics on the slab API.
    pub fn fill_outputs_from_inputs(&mut self) {
        let total: usize = self.inputs.iter().map(|p| p.tokens.len()).sum();
        let (inputs, outputs) = (&self.inputs, &mut self.outputs);
        // One participating port is the overwhelmingly common shape;
        // it cycles through `write_cycled_into`'s slice fast path
        // instead of the per-token chained iterator.
        let single = match inputs.as_slice() {
            [only] if only.tokens.len() == total => Some(only.tokens.as_slice()),
            _ => None,
        };
        for out in outputs.iter_mut() {
            out.tokens.clear();
            if total == 0 {
                out.tokens.resize(out.rate as usize, Token::Unit);
            } else if let Some(source) = single {
                write_cycled_into(&mut out.tokens, source, out.rate);
            } else {
                out.tokens.extend(
                    inputs
                        .iter()
                        .flat_map(|p| p.tokens.iter())
                        .cycle()
                        .take(out.rate as usize)
                        .cloned(),
                );
            }
        }
    }
}

/// Appends `rate` tokens to `out` by cycling through `source`;
/// [`Token::Unit`] markers when `source` is empty. Whole-slice rounds
/// go through `extend_from_slice` (a clone-from-slice specialisation),
/// only the final partial round clones token by token.
fn write_cycled_into(out: &mut Vec<Token>, source: &[Token], rate: u64) {
    let rate = rate as usize;
    if source.is_empty() {
        out.resize(out.len() + rate, Token::Unit);
        return;
    }
    out.reserve(rate);
    let mut remaining = rate;
    while remaining >= source.len() {
        out.extend_from_slice(source);
        remaining -= source.len();
    }
    out.extend_from_slice(&source[..remaining]);
}

/// What a node computes when it fires.
pub trait KernelBehavior: Send + Sync {
    /// Executes one firing: reads `ctx.inputs`, fills `ctx.outputs`.
    ///
    /// # Errors
    ///
    /// Implementations report unrecoverable application errors as
    /// [`RuntimeError::KernelFailed`]; the executor aborts the run.
    fn fire(&self, ctx: &mut FiringContext) -> Result<(), RuntimeError>;
}

/// Wraps a closure as a [`KernelBehavior`].
struct FnBehavior<F>(F);

impl<F> KernelBehavior for FnBehavior<F>
where
    F: Fn(&mut FiringContext) -> Result<(), RuntimeError> + Send + Sync,
{
    fn fire(&self, ctx: &mut FiringContext) -> Result<(), RuntimeError> {
        (self.0)(ctx)
    }
}

/// Maps node names to their executable behaviour.
///
/// Behaviours are stored behind [`Arc`], so cloning a registry is
/// cheap (it shares the behaviours) — the persistent
/// [`crate::pool::ExecutorPool`] clones the registry into each
/// submitted run so its long-lived workers never borrow caller state.
#[derive(Default, Clone)]
pub struct KernelRegistry {
    behaviors: BTreeMap<String, Arc<dyn KernelBehavior>>,
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelRegistry")
            .field("nodes", &self.behaviors.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl KernelRegistry {
    /// Creates an empty registry (every node gets built-in semantics).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a behaviour for the named node.
    pub fn register(&mut self, node: impl Into<String>, behavior: Box<dyn KernelBehavior>) {
        self.behaviors.insert(node.into(), Arc::from(behavior));
    }

    /// Registers a closure as the behaviour of the named node.
    pub fn register_fn<F>(&mut self, node: impl Into<String>, f: F)
    where
        F: Fn(&mut FiringContext) -> Result<(), RuntimeError> + Send + Sync + 'static,
    {
        self.register(node, Box::new(FnBehavior(f)));
    }

    /// The behaviour registered for `node`, if any.
    pub fn get(&self, node: &str) -> Option<&dyn KernelBehavior> {
        self.behaviors.get(node).map(|b| b.as_ref())
    }

    /// Number of registered behaviours.
    pub fn len(&self) -> usize {
        self.behaviors.len()
    }

    /// Returns `true` when no behaviour is registered.
    pub fn is_empty(&self) -> bool {
        self.behaviors.is_empty()
    }
}

/// Built-in semantics of the Select-Duplicate kernel: every selected
/// output receives a copy of the input stream.
pub(crate) fn fire_select_duplicate(ctx: &mut FiringContext) {
    ctx.fill_outputs_from_inputs();
}

/// Built-in semantics of the Transaction kernel: vote when configured,
/// then forward the best participating input.
pub(crate) fn fire_transaction(ctx: &mut FiringContext, votes_required: u32) {
    if votes_required > 0 {
        match winning_vote(&ctx.inputs, votes_required) {
            Some(tokens) => {
                ctx.fill_outputs_cycling(&tokens);
                return;
            }
            None => ctx.vote_failed = true,
        }
    }
    // No vote (or a failed one): forward the highest-priority
    // participating input, straight out of its slab — the hot path of
    // every Transaction firing allocates nothing.
    let best = ctx
        .inputs
        .iter()
        .enumerate()
        .max_by_key(|(_, p)| p.priority)
        .map(|(index, _)| index);
    let (inputs, outputs) = (&ctx.inputs, &mut ctx.outputs);
    let source: &[Token] = best.map(|i| inputs[i].tokens.as_slice()).unwrap_or(&[]);
    for out in outputs.iter_mut() {
        out.tokens.clear();
        write_cycled_into(&mut out.tokens, source, out.rate);
    }
}

/// The token stream shared by at least `votes_required` inputs, if any
/// (ties broken towards higher priority).
fn winning_vote(inputs: &[PortInput], votes_required: u32) -> Option<Vec<Token>> {
    let mut candidates: Vec<&PortInput> = inputs.iter().collect();
    candidates.sort_by_key(|p| std::cmp::Reverse(p.priority));
    for candidate in &candidates {
        let agreeing = inputs
            .iter()
            .filter(|other| other.tokens == candidate.tokens)
            .count() as u32;
        if agreeing >= votes_required {
            return Some(candidate.tokens.clone());
        }
    }
    None
}

/// Built-in semantics of regular kernels and control actors: forward
/// inputs cyclically (unit markers when nothing was consumed).
pub(crate) fn fire_default(ctx: &mut FiringContext) {
    ctx.fill_outputs_from_inputs();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(inputs: Vec<PortInput>, rates: &[u64]) -> FiringContext {
        FiringContext {
            node: Arc::from("t"),
            ordinal: 0,
            mode: Mode::WaitAll,
            inputs,
            outputs: rates
                .iter()
                .enumerate()
                .map(|(port, &rate)| PortOutput {
                    port,
                    channel: Arc::from(format!("o{port}").as_str()),
                    rate,
                    tokens: Vec::new(),
                })
                .collect(),
            deadline_missed: false,
            vote_failed: false,
            emitted_mode: None,
        }
    }

    fn port(port: usize, priority: u32, tokens: Vec<Token>) -> PortInput {
        PortInput {
            port,
            priority,
            channel: Arc::from(format!("i{port}").as_str()),
            tokens,
        }
    }

    #[test]
    fn input_slices_are_zero_copy_views() {
        let ctx = ctx_with(vec![port(1, 0, vec![Token::Int(4), Token::Int(5)])], &[1]);
        assert_eq!(
            ctx.input_tokens(1),
            &[Token::Int(4), Token::Int(5)],
            "selected port exposes its slab"
        );
        assert!(ctx.input_tokens(0).is_empty(), "unselected port is empty");
        assert_eq!(ctx.input(1).unwrap().tokens(), ctx.input_tokens(1));
    }

    #[test]
    fn select_duplicate_copies_to_every_output() {
        let mut ctx = ctx_with(vec![port(0, 0, vec![Token::Int(7)])], &[1, 1, 2]);
        fire_select_duplicate(&mut ctx);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(7)]);
        assert_eq!(ctx.outputs[1].tokens, vec![Token::Int(7)]);
        assert_eq!(ctx.outputs[2].tokens, vec![Token::Int(7), Token::Int(7)]);
    }

    #[test]
    fn transaction_forwards_highest_priority() {
        let mut ctx = ctx_with(
            vec![
                port(0, 1, vec![Token::Int(1)]),
                port(1, 3, vec![Token::Int(3)]),
                port(2, 2, vec![Token::Int(2)]),
            ],
            &[1],
        );
        fire_transaction(&mut ctx, 0);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(3)]);
        assert!(!ctx.vote_failed);
    }

    #[test]
    fn transaction_vote_picks_majority() {
        let mut ctx = ctx_with(
            vec![
                port(0, 3, vec![Token::Int(9)]), // outlier with top priority
                port(1, 2, vec![Token::Int(5)]),
                port(2, 1, vec![Token::Int(5)]),
            ],
            &[1],
        );
        fire_transaction(&mut ctx, 2);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(5)]);
        assert!(!ctx.vote_failed);
    }

    #[test]
    fn transaction_vote_failure_falls_back_to_priority() {
        let mut ctx = ctx_with(
            vec![
                port(0, 1, vec![Token::Int(1)]),
                port(1, 2, vec![Token::Int(2)]),
                port(2, 3, vec![Token::Int(3)]),
            ],
            &[1],
        );
        fire_transaction(&mut ctx, 2);
        assert!(ctx.vote_failed);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(3)]);
    }

    #[test]
    fn transaction_with_no_inputs_emits_unit_markers() {
        let mut ctx = ctx_with(Vec::new(), &[2]);
        fire_transaction(&mut ctx, 0);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Unit, Token::Unit]);
    }

    #[test]
    fn default_forwards_cyclically() {
        let mut ctx = ctx_with(vec![port(0, 0, vec![Token::Int(1), Token::Int(2)])], &[5]);
        fire_default(&mut ctx);
        assert_eq!(
            ctx.outputs[0].tokens,
            vec![
                Token::Int(1),
                Token::Int(2),
                Token::Int(1),
                Token::Int(2),
                Token::Int(1)
            ]
        );
    }

    #[test]
    fn input_scalars_and_mode_override() {
        let mut ctx = ctx_with(
            vec![
                port(0, 0, vec![Token::Int(4), Token::Unit]),
                port(1, 0, vec![Token::Byte(2)]),
            ],
            &[1],
        );
        assert_eq!(ctx.input_scalars(), vec![4, 0, 2]);
        assert_eq!(ctx.emitted_mode, None);
        ctx.set_mode(Mode::SelectOne(1));
        assert_eq!(ctx.emitted_mode, Some(Mode::SelectOne(1)));
    }

    #[test]
    fn registry_round_trip() {
        let mut registry = KernelRegistry::new();
        assert!(registry.is_empty());
        registry.register_fn("a", |ctx| {
            ctx.fill_outputs_cycling(&[Token::Int(42)]);
            Ok(())
        });
        assert_eq!(registry.len(), 1);
        assert!(registry.get("a").is_some());
        assert!(registry.get("b").is_none());
        let mut ctx = ctx_with(Vec::new(), &[1]);
        registry.get("a").unwrap().fire(&mut ctx).unwrap();
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(42)]);
        assert!(format!("{registry:?}").contains("a"));
    }
}

//! Executable kernel behaviours and the paper's special kernels.
//!
//! The graph (`tpdf_core::TpdfGraph`) says *when* a kernel may fire and
//! at which rates; a [`KernelBehavior`] says *what the firing computes*.
//! Applications register a behaviour per node name in a
//! [`KernelRegistry`]; nodes without a registered behaviour get the
//! built-in semantics:
//!
//! * **Select-Duplicate** kernels copy their input stream to every
//!   output selected by the current mode (speculation / forking — the
//!   copies are `Clone`s of [`Token`], so images are shared, not
//!   duplicated).
//! * **Transaction** kernels forward the tokens of the highest-priority
//!   input that participated in the firing; with `votes_required > 0`
//!   they first look for `votes_required` inputs that agree
//!   (redundancy with vote).
//! * **Regular** kernels and control actors forward their concatenated
//!   input tokens cyclically to each output (or emit [`Token::Unit`]
//!   markers when the firing consumed nothing), which keeps rate-only
//!   graphs — e.g. the Figure 2 running example — executable without any
//!   registration.

use crate::token::Token;
use crate::RuntimeError;
use std::collections::BTreeMap;
use tpdf_core::mode::Mode;

/// The tokens one data-input port contributed to a firing.
#[derive(Debug, Clone)]
pub struct PortInput {
    /// Port index among the kernel's data inputs (declaration order).
    pub port: usize,
    /// Priority `α` of the port (higher wins Transaction selection).
    pub priority: u32,
    /// Channel label (e.g. `e6`), for diagnostics.
    pub channel: String,
    /// The consumed tokens, oldest first.
    pub tokens: Vec<Token>,
}

/// One data-output port a firing must fill.
#[derive(Debug, Clone)]
pub struct PortOutput {
    /// Port index among the kernel's data outputs (declaration order).
    pub port: usize,
    /// Channel label, for diagnostics.
    pub channel: String,
    /// Number of tokens the firing must produce on this port.
    pub rate: u64,
    /// The produced tokens; must contain exactly `rate` tokens when the
    /// behaviour returns.
    pub tokens: Vec<Token>,
}

/// Everything a kernel behaviour sees and produces during one firing.
#[derive(Debug)]
pub struct FiringContext {
    /// Node name.
    pub node: String,
    /// Global firing ordinal of this node (across iterations).
    pub ordinal: u64,
    /// The mode this firing executes in (from the control token, or
    /// [`Mode::WaitAll`] for unsteered kernels).
    pub mode: Mode,
    /// Data consumed, one entry per *selected* input port.
    pub inputs: Vec<PortInput>,
    /// Data to produce, one entry per output port of this firing.
    pub outputs: Vec<PortOutput>,
    /// Set by the executor when a real-time deadline forced this firing
    /// before any input was available.
    pub deadline_missed: bool,
    /// Set by the built-in Transaction behaviour when a vote could not
    /// reach `votes_required` agreeing inputs.
    pub vote_failed: bool,
}

impl FiringContext {
    /// All consumed tokens, port after port, oldest first.
    pub fn concatenated_inputs(&self) -> Vec<Token> {
        self.inputs
            .iter()
            .flat_map(|p| p.tokens.iter().cloned())
            .collect()
    }

    /// Fills every output port by cycling through `source` (or with
    /// [`Token::Unit`] markers when `source` is empty).
    pub fn fill_outputs_cycling(&mut self, source: &[Token]) {
        for out in &mut self.outputs {
            out.tokens = cycle_to(source, out.rate);
        }
    }
}

/// Produces `rate` tokens by cycling through `source`; [`Token::Unit`]
/// markers when `source` is empty.
fn cycle_to(source: &[Token], rate: u64) -> Vec<Token> {
    if source.is_empty() {
        return vec![Token::Unit; rate as usize];
    }
    (0..rate as usize)
        .map(|i| source[i % source.len()].clone())
        .collect()
}

/// What a node computes when it fires.
pub trait KernelBehavior: Send + Sync {
    /// Executes one firing: reads `ctx.inputs`, fills `ctx.outputs`.
    ///
    /// # Errors
    ///
    /// Implementations report unrecoverable application errors as
    /// [`RuntimeError::KernelFailed`]; the executor aborts the run.
    fn fire(&self, ctx: &mut FiringContext) -> Result<(), RuntimeError>;
}

/// Wraps a closure as a [`KernelBehavior`].
struct FnBehavior<F>(F);

impl<F> KernelBehavior for FnBehavior<F>
where
    F: Fn(&mut FiringContext) -> Result<(), RuntimeError> + Send + Sync,
{
    fn fire(&self, ctx: &mut FiringContext) -> Result<(), RuntimeError> {
        (self.0)(ctx)
    }
}

/// Maps node names to their executable behaviour.
#[derive(Default)]
pub struct KernelRegistry {
    behaviors: BTreeMap<String, Box<dyn KernelBehavior>>,
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelRegistry")
            .field("nodes", &self.behaviors.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl KernelRegistry {
    /// Creates an empty registry (every node gets built-in semantics).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a behaviour for the named node.
    pub fn register(&mut self, node: impl Into<String>, behavior: Box<dyn KernelBehavior>) {
        self.behaviors.insert(node.into(), behavior);
    }

    /// Registers a closure as the behaviour of the named node.
    pub fn register_fn<F>(&mut self, node: impl Into<String>, f: F)
    where
        F: Fn(&mut FiringContext) -> Result<(), RuntimeError> + Send + Sync + 'static,
    {
        self.register(node, Box::new(FnBehavior(f)));
    }

    /// The behaviour registered for `node`, if any.
    pub fn get(&self, node: &str) -> Option<&dyn KernelBehavior> {
        self.behaviors.get(node).map(|b| b.as_ref())
    }

    /// Number of registered behaviours.
    pub fn len(&self) -> usize {
        self.behaviors.len()
    }

    /// Returns `true` when no behaviour is registered.
    pub fn is_empty(&self) -> bool {
        self.behaviors.is_empty()
    }
}

/// Built-in semantics of the Select-Duplicate kernel: every selected
/// output receives a copy of the input stream.
pub(crate) fn fire_select_duplicate(ctx: &mut FiringContext) {
    let source = ctx.concatenated_inputs();
    ctx.fill_outputs_cycling(&source);
}

/// Built-in semantics of the Transaction kernel: vote when configured,
/// then forward the best participating input.
pub(crate) fn fire_transaction(ctx: &mut FiringContext, votes_required: u32) {
    let chosen: Option<Vec<Token>> = if votes_required > 0 {
        match winning_vote(&ctx.inputs, votes_required) {
            Some(tokens) => Some(tokens),
            None => {
                ctx.vote_failed = true;
                best_input(&ctx.inputs)
            }
        }
    } else {
        best_input(&ctx.inputs)
    };
    match chosen {
        Some(tokens) => ctx.fill_outputs_cycling(&tokens),
        None => ctx.fill_outputs_cycling(&[]),
    }
}

/// The token stream of the highest-priority participating input.
fn best_input(inputs: &[PortInput]) -> Option<Vec<Token>> {
    inputs
        .iter()
        .max_by_key(|p| p.priority)
        .map(|p| p.tokens.clone())
}

/// The token stream shared by at least `votes_required` inputs, if any
/// (ties broken towards higher priority).
fn winning_vote(inputs: &[PortInput], votes_required: u32) -> Option<Vec<Token>> {
    let mut candidates: Vec<&PortInput> = inputs.iter().collect();
    candidates.sort_by_key(|p| std::cmp::Reverse(p.priority));
    for candidate in &candidates {
        let agreeing = inputs
            .iter()
            .filter(|other| other.tokens == candidate.tokens)
            .count() as u32;
        if agreeing >= votes_required {
            return Some(candidate.tokens.clone());
        }
    }
    None
}

/// Built-in semantics of regular kernels and control actors: forward
/// inputs cyclically (unit markers when nothing was consumed).
pub(crate) fn fire_default(ctx: &mut FiringContext) {
    let source = ctx.concatenated_inputs();
    ctx.fill_outputs_cycling(&source);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_with(inputs: Vec<PortInput>, rates: &[u64]) -> FiringContext {
        FiringContext {
            node: "t".to_string(),
            ordinal: 0,
            mode: Mode::WaitAll,
            inputs,
            outputs: rates
                .iter()
                .enumerate()
                .map(|(port, &rate)| PortOutput {
                    port,
                    channel: format!("o{port}"),
                    rate,
                    tokens: Vec::new(),
                })
                .collect(),
            deadline_missed: false,
            vote_failed: false,
        }
    }

    fn port(port: usize, priority: u32, tokens: Vec<Token>) -> PortInput {
        PortInput {
            port,
            priority,
            channel: format!("i{port}"),
            tokens,
        }
    }

    #[test]
    fn select_duplicate_copies_to_every_output() {
        let mut ctx = ctx_with(vec![port(0, 0, vec![Token::Int(7)])], &[1, 1, 2]);
        fire_select_duplicate(&mut ctx);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(7)]);
        assert_eq!(ctx.outputs[1].tokens, vec![Token::Int(7)]);
        assert_eq!(ctx.outputs[2].tokens, vec![Token::Int(7), Token::Int(7)]);
    }

    #[test]
    fn transaction_forwards_highest_priority() {
        let mut ctx = ctx_with(
            vec![
                port(0, 1, vec![Token::Int(1)]),
                port(1, 3, vec![Token::Int(3)]),
                port(2, 2, vec![Token::Int(2)]),
            ],
            &[1],
        );
        fire_transaction(&mut ctx, 0);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(3)]);
        assert!(!ctx.vote_failed);
    }

    #[test]
    fn transaction_vote_picks_majority() {
        let mut ctx = ctx_with(
            vec![
                port(0, 3, vec![Token::Int(9)]), // outlier with top priority
                port(1, 2, vec![Token::Int(5)]),
                port(2, 1, vec![Token::Int(5)]),
            ],
            &[1],
        );
        fire_transaction(&mut ctx, 2);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(5)]);
        assert!(!ctx.vote_failed);
    }

    #[test]
    fn transaction_vote_failure_falls_back_to_priority() {
        let mut ctx = ctx_with(
            vec![
                port(0, 1, vec![Token::Int(1)]),
                port(1, 2, vec![Token::Int(2)]),
                port(2, 3, vec![Token::Int(3)]),
            ],
            &[1],
        );
        fire_transaction(&mut ctx, 2);
        assert!(ctx.vote_failed);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(3)]);
    }

    #[test]
    fn transaction_with_no_inputs_emits_unit_markers() {
        let mut ctx = ctx_with(Vec::new(), &[2]);
        fire_transaction(&mut ctx, 0);
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Unit, Token::Unit]);
    }

    #[test]
    fn default_forwards_cyclically() {
        let mut ctx = ctx_with(vec![port(0, 0, vec![Token::Int(1), Token::Int(2)])], &[5]);
        fire_default(&mut ctx);
        assert_eq!(
            ctx.outputs[0].tokens,
            vec![
                Token::Int(1),
                Token::Int(2),
                Token::Int(1),
                Token::Int(2),
                Token::Int(1)
            ]
        );
    }

    #[test]
    fn registry_round_trip() {
        let mut registry = KernelRegistry::new();
        assert!(registry.is_empty());
        registry.register_fn("a", |ctx| {
            ctx.fill_outputs_cycling(&[Token::Int(42)]);
            Ok(())
        });
        assert_eq!(registry.len(), 1);
        assert!(registry.get("a").is_some());
        assert!(registry.get("b").is_none());
        let mut ctx = ctx_with(Vec::new(), &[1]);
        registry.get("a").unwrap().fire(&mut ctx).unwrap();
        assert_eq!(ctx.outputs[0].tokens, vec![Token::Int(42)]);
        assert!(format!("{registry:?}").contains("a"));
    }
}

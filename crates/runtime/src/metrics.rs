//! Execution statistics reported by the runtime.

use crate::executor::PlacementPolicy;
use std::time::Duration;
use tpdf_core::graph::{ChannelId, NodeId, TpdfGraph};
use tpdf_core::mode::Mode;
use tpdf_symexpr::Binding;

/// One deadline decision taken by a clock-driven Transaction kernel
/// (the runtime analogue of `tpdf_sim::DeadlineOutcome`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineSelection {
    /// The Transaction kernel.
    pub transaction: NodeId,
    /// The data input whose result was selected, or `None` when the
    /// deadline arrived before any result (a deadline miss).
    pub selected_channel: Option<ChannelId>,
    /// Priority of the selected input (higher is better).
    pub selected_priority: Option<u32>,
    /// Wall-clock offset of the firing from the start of the run.
    pub at: Duration,
}

/// One parameter rebinding applied at an iteration barrier: the paper
/// allows `p` to change between (never within) iterations, and the
/// executor re-derives repetition counts and ring capacities when it
/// does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebindEvent {
    /// The iteration that started under the new binding (0-based).
    pub iteration: u64,
    /// The effective binding from that iteration on.
    pub binding: Binding,
    /// The repetition counts the new binding implies (indexed by
    /// [`NodeId`]).
    pub counts: Vec<u64>,
    /// The ring capacities in effect after the rebind (indexed by
    /// [`ChannelId`]); rings only ever grow.
    pub capacities: Vec<u64>,
}

/// Aggregate statistics of one runtime execution.
///
/// The serde derives are the workspace's offline no-op stubs; the
/// concrete text codec behind the seam is
/// [`Metrics::to_snapshot`] / [`Metrics::from_snapshot`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Metrics {
    /// Complete graph iterations executed.
    pub iterations: u64,
    /// Worker threads configured.
    pub threads: usize,
    /// Worker threads the run actually engaged: 1 when the granularity
    /// heuristic collapsed a fine-grained graph to the single-worker
    /// fast path, the configured (pool-clamped) count otherwise. A
    /// reused [`crate::pool::ExecutorPool`] whose telemetry classified
    /// the graph in an earlier run starts follow-up runs already
    /// collapsed — visible here as `effective_workers == 1` with
    /// `threads > 1`.
    pub effective_workers: usize,
    /// The placement policy the run executed under.
    pub placement: PlacementPolicy,
    /// Total firings of each node (indexed by [`NodeId`]).
    pub firings: Vec<u64>,
    /// Tokens pushed onto each channel (indexed by [`ChannelId`]);
    /// control channels count control tokens.
    pub tokens_pushed: Vec<u64>,
    /// Highest observed occupancy of each channel.
    pub channel_high_water: Vec<u64>,
    /// Configured ring capacity of each channel: data rings are sized
    /// from the reference high-water marks times the slack factor,
    /// control rings from their per-iteration production (an exact
    /// occupancy bound).
    pub channel_capacity: Vec<u64>,
    /// Sum of [`Metrics::tokens_pushed`].
    pub total_tokens: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// [`Metrics::total_tokens`] per second of [`Metrics::elapsed`].
    pub tokens_per_sec: f64,
    /// Clock-driven Transaction firings that found no input available at
    /// their real-time deadline.
    pub deadline_misses: u64,
    /// Transaction votes that failed to reach the required agreement.
    pub vote_failures: u64,
    /// Every deadline decision taken by clock-driven Transactions, in
    /// firing order.
    pub deadline_selections: Vec<DeadlineSelection>,
    /// The modes each node emitted on its control outputs, one entry
    /// per firing, in firing order (indexed by [`NodeId`]; empty for
    /// nodes without control outputs). Cross-validation compares these
    /// against `tpdf-sim`'s `SimulationReport::mode_sequences`.
    pub mode_sequences: Vec<Vec<Mode>>,
    /// Firings completed by each worker (indexed by worker; length =
    /// [`Metrics::effective_workers`]).
    pub worker_firings: Vec<u64>,
    /// Firings each worker acquired across the placement boundary:
    /// hints popped from a foreign queue under
    /// [`PlacementPolicy::WorkStealing`], plus foreign-home nodes fired
    /// by a starved worker under [`PlacementPolicy::Affinity`].
    pub worker_steals: Vec<u64>,
    /// Every parameter rebinding applied at an iteration barrier, in
    /// iteration order (empty without a binding sequence).
    pub rebinds: Vec<RebindEvent>,
    /// Core-pinning outcome of the pool the run executed on, indexed by
    /// *pool* worker (not per-job participant): `Some(core)` for a
    /// worker the `core-pinning` feature pinned to a CPU core, `None`
    /// for an unpinned worker (the calling thread of a non-detached
    /// pool is never pinned). Empty for scoped `Executor::run`s, which
    /// have no persistent workers to pin.
    pub pinned_cores: Vec<Option<usize>>,
    /// Slab-arena requests served from a worker freelist without
    /// touching the allocator, summed over all workers.
    pub arena_hits: u64,
    /// Slab-arena requests that fell back to the global allocator
    /// (cold start, or first firings after a plan switch).
    pub arena_misses: u64,
    /// Firing slabs returned to a worker freelist for reuse.
    pub arena_recycled: u64,
    /// Firing slabs dropped because their capacity class was already
    /// full (retention bound).
    pub arena_retired: u64,
}

impl Metrics {
    /// Firing count of the named node.
    pub fn firings_of(&self, graph: &TpdfGraph, name: &str) -> Option<u64> {
        graph.node_by_name(name).map(|id| self.firings[id.0])
    }

    /// Per-actor firing rate in firings per second.
    pub fn firings_per_sec(&self) -> f64 {
        let total: u64 = self.firings.iter().sum();
        if self.elapsed.is_zero() {
            return 0.0;
        }
        total as f64 / self.elapsed.as_secs_f64()
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} iterations on {} threads in {:?}: {} tokens ({:.0} tokens/s, {:.0} firings/s), {} deadline misses",
            self.iterations,
            self.threads,
            self.elapsed,
            self.total_tokens,
            self.tokens_per_sec,
            self.firings_per_sec(),
            self.deadline_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpdf_core::examples::figure2_graph;

    fn sample() -> Metrics {
        Metrics {
            iterations: 2,
            threads: 4,
            effective_workers: 4,
            placement: PlacementPolicy::WorkStealing,
            firings: vec![4, 8, 4, 4, 8, 8],
            tokens_pushed: vec![10; 7],
            channel_high_water: vec![4; 7],
            channel_capacity: vec![8; 7],
            total_tokens: 70,
            elapsed: Duration::from_millis(500),
            tokens_per_sec: 140.0,
            deadline_misses: 1,
            vote_failures: 0,
            deadline_selections: Vec::new(),
            mode_sequences: vec![Vec::new(); 6],
            worker_firings: vec![9, 9, 9, 9],
            worker_steals: vec![0; 4],
            rebinds: Vec::new(),
            pinned_cores: Vec::new(),
            arena_hits: 30,
            arena_misses: 6,
            arena_recycled: 30,
            arena_retired: 0,
        }
    }

    #[test]
    fn firings_lookup_by_name() {
        let g = figure2_graph();
        let m = sample();
        assert_eq!(m.firings_of(&g, "B"), Some(8));
        assert_eq!(m.firings_of(&g, "nope"), None);
    }

    #[test]
    fn rates_and_summary() {
        let m = sample();
        assert!((m.firings_per_sec() - 72.0).abs() < 1e-9);
        let s = m.summary();
        assert!(s.contains("2 iterations"));
        assert!(s.contains("4 threads"));
        assert!(s.contains("1 deadline misses"));
    }
}

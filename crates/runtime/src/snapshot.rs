//! Text snapshot codec and Prometheus rendering for [`Metrics`].
//!
//! The workspace's serde dependency is an offline stub whose derive
//! macros are no-ops, so the `#[derive(serde::Serialize)]` marker on
//! [`Metrics`] carries no code; this module is the concrete codec
//! behind that seam, built on [`tpdf_trace`]'s line-oriented
//! [`SnapshotWriter`]/[`SnapshotReader`] (`key=value` lines, repeated
//! keys forming ordered lists, floats as exact bit patterns). The
//! encoding is lossless: [`Metrics::from_snapshot`] ∘
//! [`Metrics::to_snapshot`] is the identity, which the round-trip
//! tests pin down.

use crate::executor::PlacementPolicy;
use crate::metrics::{DeadlineSelection, Metrics, RebindEvent};
use std::time::Duration;
use tpdf_core::graph::{ChannelId, NodeId};
use tpdf_core::mode::Mode;
use tpdf_manycore::MappingStrategy;
use tpdf_symexpr::Binding;
use tpdf_trace::{Exposition, SnapshotError, SnapshotReader, SnapshotWriter};

fn placement_str(placement: &PlacementPolicy) -> &'static str {
    match placement {
        PlacementPolicy::WorkStealing => "ws",
        PlacementPolicy::Affinity(MappingStrategy::RoundRobin) => "affinity:round_robin",
        PlacementPolicy::Affinity(MappingStrategy::Packed) => "affinity:packed",
        PlacementPolicy::Affinity(MappingStrategy::LoadBalanced) => "affinity:load_balanced",
    }
}

fn placement_parse(text: &str) -> Result<PlacementPolicy, SnapshotError> {
    Ok(match text {
        "ws" => PlacementPolicy::WorkStealing,
        "affinity:round_robin" => PlacementPolicy::Affinity(MappingStrategy::RoundRobin),
        "affinity:packed" => PlacementPolicy::Affinity(MappingStrategy::Packed),
        "affinity:load_balanced" => PlacementPolicy::Affinity(MappingStrategy::LoadBalanced),
        other => return Err(SnapshotError::Malformed(format!("placement={other}"))),
    })
}

/// Appends `v` in decimal without `fmt` machinery — the `modes` lines
/// are the longest part of a metrics snapshot, and checkpoint encoding
/// serializes one per capture under a guarded overhead budget.
fn push_decimal(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends one mode as a compact token: `all`, `hp`, `one:3`,
/// `many:1+2`.
fn push_mode(out: &mut String, mode: &Mode) {
    match mode {
        Mode::WaitAll => out.push_str("all"),
        Mode::HighestPriority => out.push_str("hp"),
        Mode::SelectOne(port) => {
            out.push_str("one:");
            push_decimal(out, *port as u64);
        }
        Mode::SelectMany(ports) => {
            out.push_str("many:");
            for (i, port) in ports.iter().enumerate() {
                if i > 0 {
                    out.push('+');
                }
                push_decimal(out, *port as u64);
            }
        }
    }
}

fn mode_parse(token: &str) -> Result<Mode, SnapshotError> {
    let malformed = || SnapshotError::Malformed(format!("mode token {token:?}"));
    Ok(match token {
        "all" => Mode::WaitAll,
        "hp" => Mode::HighestPriority,
        _ => {
            if let Some(port) = token.strip_prefix("one:") {
                Mode::SelectOne(port.parse().map_err(|_| malformed())?)
            } else if let Some(ports) = token.strip_prefix("many:") {
                if ports.is_empty() {
                    Mode::SelectMany(Vec::new())
                } else {
                    Mode::SelectMany(
                        ports
                            .split('+')
                            .map(|p| p.parse().map_err(|_| malformed()))
                            .collect::<Result<_, _>>()?,
                    )
                }
            } else {
                return Err(malformed());
            }
        }
    })
}

/// An optional index as a token: the index itself, or `-` for `None`.
fn opt_str(value: Option<u64>) -> String {
    value.map_or_else(|| "-".into(), |v| v.to_string())
}

fn opt_parse(token: &str, what: &str) -> Result<Option<u64>, SnapshotError> {
    if token == "-" {
        return Ok(None);
    }
    token
        .parse()
        .map(Some)
        .map_err(|_| SnapshotError::Malformed(format!("{what}={token}")))
}

impl Metrics {
    /// Writes every field into `writer` (see the module docs for the
    /// vocabulary: one `key=value` line per field, repeated
    /// `deadline_selection` / `modes` / `rebind` keys for the
    /// per-event lists).
    pub fn write_snapshot(&self, writer: &mut SnapshotWriter) {
        writer.field("iterations", self.iterations);
        writer.field("threads", self.threads);
        writer.field("effective_workers", self.effective_workers);
        writer.field("placement", placement_str(&self.placement));
        writer.field_list("firings", self.firings.iter().copied());
        writer.field_list("tokens_pushed", self.tokens_pushed.iter().copied());
        writer.field_list(
            "channel_high_water",
            self.channel_high_water.iter().copied(),
        );
        writer.field_list("channel_capacity", self.channel_capacity.iter().copied());
        writer.field("total_tokens", self.total_tokens);
        writer.field("elapsed_ns", self.elapsed.as_nanos() as u64);
        writer.field_f64("tokens_per_sec", self.tokens_per_sec);
        writer.field("deadline_misses", self.deadline_misses);
        writer.field("vote_failures", self.vote_failures);
        for selection in &self.deadline_selections {
            writer.field(
                "deadline_selection",
                format_args!(
                    "{},{},{},{}",
                    selection.transaction.0,
                    opt_str(selection.selected_channel.map(|c| c.0 as u64)),
                    opt_str(selection.selected_priority.map(u64::from)),
                    selection.at.as_nanos()
                ),
            );
        }
        let mut scratch = String::new();
        for modes in &self.mode_sequences {
            scratch.clear();
            for (i, mode) in modes.iter().enumerate() {
                if i > 0 {
                    scratch.push(' ');
                }
                push_mode(&mut scratch, mode);
            }
            writer.field("modes", &scratch);
        }
        writer.field_list("worker_firings", self.worker_firings.iter().copied());
        writer.field_list("worker_steals", self.worker_steals.iter().copied());
        for rebind in &self.rebinds {
            let pairs = rebind
                .binding
                .iter()
                .map(|(name, value)| format!("{name}:{value}"))
                .collect::<Vec<_>>()
                .join(" ");
            let counts = rebind
                .counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let capacities = rebind
                .capacities
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(",");
            writer.field(
                "rebind",
                format_args!("{};{pairs};{counts};{capacities}", rebind.iteration),
            );
        }
        let pinned = self
            .pinned_cores
            .iter()
            .map(|core| opt_str(core.map(|c| c as u64)))
            .collect::<Vec<_>>()
            .join(",");
        writer.field("pinned_cores", pinned);
        writer.field("arena_hits", self.arena_hits);
        writer.field("arena_misses", self.arena_misses);
        writer.field("arena_recycled", self.arena_recycled);
        writer.field("arena_retired", self.arena_retired);
    }

    /// Reads a snapshot written by [`Metrics::write_snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when a required field is absent or fails to
    /// parse.
    pub fn read_snapshot(reader: &SnapshotReader) -> Result<Metrics, SnapshotError> {
        let mut deadline_selections = Vec::new();
        for line in reader.values("deadline_selection") {
            let parts: Vec<&str> = line.split(',').collect();
            let [transaction, channel, priority, at_ns] = parts[..] else {
                return Err(SnapshotError::Malformed(format!(
                    "deadline_selection={line}"
                )));
            };
            deadline_selections.push(DeadlineSelection {
                transaction: NodeId(
                    transaction.parse().map_err(|_| {
                        SnapshotError::Malformed(format!("deadline_selection={line}"))
                    })?,
                ),
                selected_channel: opt_parse(channel, "deadline_selection")?
                    .map(|c| ChannelId(c as usize)),
                selected_priority: opt_parse(priority, "deadline_selection")?.map(|p| p as u32),
                at: Duration::from_nanos(
                    at_ns.parse().map_err(|_| {
                        SnapshotError::Malformed(format!("deadline_selection={line}"))
                    })?,
                ),
            });
        }
        let mut mode_sequences = Vec::new();
        for line in reader.values("modes") {
            let modes = if line.is_empty() {
                Vec::new()
            } else {
                line.split(' ').map(mode_parse).collect::<Result<_, _>>()?
            };
            mode_sequences.push(modes);
        }
        let mut rebinds = Vec::new();
        for line in reader.values("rebind") {
            let parts: Vec<&str> = line.splitn(4, ';').collect();
            let [iteration, pairs, counts, capacities] = parts[..] else {
                return Err(SnapshotError::Malformed(format!("rebind={line}")));
            };
            let malformed = || SnapshotError::Malformed(format!("rebind={line}"));
            let mut binding = Binding::new();
            for pair in pairs.split(' ').filter(|p| !p.is_empty()) {
                let (name, value) = pair.split_once(':').ok_or_else(malformed)?;
                binding.set(name, value.parse().map_err(|_| malformed())?);
            }
            let parse_list = |text: &str| -> Result<Vec<u64>, SnapshotError> {
                if text.is_empty() {
                    return Ok(Vec::new());
                }
                text.split(',')
                    .map(|part| part.parse().map_err(|_| malformed()))
                    .collect()
            };
            rebinds.push(RebindEvent {
                iteration: iteration.parse().map_err(|_| malformed())?,
                binding,
                counts: parse_list(counts)?,
                capacities: parse_list(capacities)?,
            });
        }
        let pinned_raw = reader.raw("pinned_cores")?;
        let pinned_cores = if pinned_raw.is_empty() {
            Vec::new()
        } else {
            pinned_raw
                .split(',')
                .map(|token| opt_parse(token, "pinned_cores").map(|c| c.map(|v| v as usize)))
                .collect::<Result<_, _>>()?
        };
        Ok(Metrics {
            iterations: reader.u64("iterations")?,
            threads: reader.get("threads")?,
            effective_workers: reader.get("effective_workers")?,
            placement: placement_parse(reader.raw("placement")?)?,
            firings: reader.u64_list("firings")?,
            tokens_pushed: reader.u64_list("tokens_pushed")?,
            channel_high_water: reader.u64_list("channel_high_water")?,
            channel_capacity: reader.u64_list("channel_capacity")?,
            total_tokens: reader.u64("total_tokens")?,
            elapsed: Duration::from_nanos(reader.u64("elapsed_ns")?),
            tokens_per_sec: reader.f64("tokens_per_sec")?,
            deadline_misses: reader.u64("deadline_misses")?,
            vote_failures: reader.u64("vote_failures")?,
            deadline_selections,
            mode_sequences,
            worker_firings: reader.u64_list("worker_firings")?,
            worker_steals: reader.u64_list("worker_steals")?,
            rebinds,
            pinned_cores,
            arena_hits: reader.u64("arena_hits")?,
            arena_misses: reader.u64("arena_misses")?,
            arena_recycled: reader.u64("arena_recycled")?,
            arena_retired: reader.u64("arena_retired")?,
        })
    }

    /// The snapshot as one text document.
    pub fn to_snapshot(&self) -> String {
        let mut writer = SnapshotWriter::new();
        self.write_snapshot(&mut writer);
        writer.finish()
    }

    /// Parses a document produced by [`Metrics::to_snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on a missing or malformed field.
    pub fn from_snapshot(text: &str) -> Result<Metrics, SnapshotError> {
        Metrics::read_snapshot(&SnapshotReader::parse(text)?)
    }

    /// Renders the run's aggregates in Prometheus text exposition
    /// format (counters and gauges prefixed `tpdf_run_`).
    pub fn to_prometheus(&self) -> String {
        let mut expo = Exposition::new();
        expo.counter(
            "tpdf_run_iterations_total",
            "Complete graph iterations executed",
            self.iterations,
        );
        expo.gauge(
            "tpdf_run_effective_workers",
            "Worker threads the run actually engaged",
            self.effective_workers as f64,
        );
        expo.counter(
            "tpdf_run_firings_total",
            "Total node firings",
            self.firings.iter().sum(),
        );
        expo.counter(
            "tpdf_run_tokens_total",
            "Tokens pushed onto all channels",
            self.total_tokens,
        );
        expo.gauge(
            "tpdf_run_tokens_per_second",
            "Token throughput of the run",
            self.tokens_per_sec,
        );
        expo.counter(
            "tpdf_run_deadline_misses_total",
            "Clock-driven Transaction firings that found no input at the deadline",
            self.deadline_misses,
        );
        expo.counter(
            "tpdf_run_vote_failures_total",
            "Transaction votes that failed to reach agreement",
            self.vote_failures,
        );
        for (worker, &firings) in self.worker_firings.iter().enumerate() {
            expo.counter_with(
                "tpdf_run_worker_firings_total",
                "Firings completed by each worker",
                ("worker", &worker.to_string()),
                firings,
            );
        }
        for (worker, &steals) in self.worker_steals.iter().enumerate() {
            expo.counter_with(
                "tpdf_run_worker_steals_total",
                "Firings acquired across the placement boundary",
                ("worker", &worker.to_string()),
                steals,
            );
        }
        expo.counter(
            "tpdf_run_arena_hits_total",
            "Firing slabs served from worker freelists without allocating",
            self.arena_hits,
        );
        expo.counter(
            "tpdf_run_arena_misses_total",
            "Firing-slab requests that fell back to the global allocator",
            self.arena_misses,
        );
        expo.counter(
            "tpdf_run_arena_recycled_total",
            "Firing slabs returned to worker freelists",
            self.arena_recycled,
        );
        expo.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metrics {
        Metrics {
            iterations: 3,
            threads: 4,
            effective_workers: 2,
            placement: PlacementPolicy::Affinity(MappingStrategy::LoadBalanced),
            firings: vec![6, 12, 6],
            tokens_pushed: vec![12, 12],
            channel_high_water: vec![4, 2],
            channel_capacity: vec![8, 4],
            total_tokens: 24,
            elapsed: Duration::from_micros(1500),
            tokens_per_sec: 16_000.0,
            deadline_misses: 1,
            vote_failures: 2,
            deadline_selections: vec![
                DeadlineSelection {
                    transaction: NodeId(2),
                    selected_channel: Some(ChannelId(1)),
                    selected_priority: Some(3),
                    at: Duration::from_nanos(777),
                },
                DeadlineSelection {
                    transaction: NodeId(2),
                    selected_channel: None,
                    selected_priority: None,
                    at: Duration::from_nanos(900),
                },
            ],
            mode_sequences: vec![
                vec![Mode::WaitAll, Mode::SelectOne(1)],
                Vec::new(),
                vec![
                    Mode::HighestPriority,
                    Mode::SelectMany(vec![0, 2]),
                    Mode::SelectMany(Vec::new()),
                ],
            ],
            worker_firings: vec![14, 10],
            worker_steals: vec![3, 0],
            rebinds: vec![RebindEvent {
                iteration: 2,
                binding: Binding::from_pairs([("p", 4), ("q", -1)]),
                counts: vec![2, 4, 2],
                capacities: vec![8, 4],
            }],
            pinned_cores: vec![Some(0), None, Some(3)],
            arena_hits: 40,
            arena_misses: 8,
            arena_recycled: 44,
            arena_retired: 1,
        }
    }

    #[test]
    fn metrics_round_trip_exactly() {
        let metrics = sample();
        let text = metrics.to_snapshot();
        let back = Metrics::from_snapshot(&text).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn empty_collections_round_trip() {
        let mut metrics = sample();
        metrics.deadline_selections.clear();
        metrics.mode_sequences.clear();
        metrics.rebinds.clear();
        metrics.pinned_cores.clear();
        metrics.worker_steals.clear();
        let back = Metrics::from_snapshot(&metrics.to_snapshot()).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn malformed_fields_are_named() {
        assert!(matches!(
            Metrics::from_snapshot("iterations=1\n"),
            Err(SnapshotError::Missing(_))
        ));
        let mut text = sample().to_snapshot();
        text = text.replace("placement=affinity:load_balanced", "placement=magic");
        assert!(matches!(
            Metrics::from_snapshot(&text),
            Err(SnapshotError::Malformed(what)) if what.contains("placement")
        ));
    }

    #[test]
    fn prometheus_rendering_exposes_totals() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE tpdf_run_firings_total counter"));
        assert!(text.contains("tpdf_run_firings_total 24"));
        assert!(text.contains("tpdf_run_worker_firings_total{worker=\"1\"} 10"));
        assert!(text.ends_with('\n'));
    }
}

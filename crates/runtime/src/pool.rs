//! A persistent worker pool servicing many concurrent runs.
//!
//! [`crate::executor::Executor::run`] spawns its secondary workers with
//! [`std::thread::scope`] and joins them before returning — correct,
//! but the spawn/join pair is paid on *every* run, and only one run can
//! use the threads at a time. An [`ExecutorPool`] spawns its workers
//! **once** and multiplexes them over a *slot table of active jobs*:
//!
//! * [`ExecutorPool::run`] — the classic blocking call: the caller is
//!   participant 0 (exactly as in the scoped path) and pool workers
//!   fill the remaining participation slots.
//! * [`ExecutorPool::submit`] — asynchronous: the job is queued and
//!   executed entirely by pool workers; the returned [`JobTicket`] is
//!   polled ([`JobTicket::try_take`]), awaited ([`JobTicket::wait`],
//!   which lends the waiting thread as a participant when a slot is
//!   free) or cancelled ([`JobTicket::cancel`]). This is the substrate
//!   of `tpdf-service`'s multi-session layer: many graph instances
//!   share one pool, each with its own isolated [`RunState`], metrics
//!   and panic containment.
//!
//! The pool also owns the firing-cost telemetry
//! ([`crate::executor::Executor::sampled_firing_cost_ns`]'s EWMA):
//! executors built through [`ExecutorPool::executor`] share it, so the
//! granularity classification learned in one run — "this graph is too
//! fine-grained to distribute" — survives into the next run *and* into
//! the next executor. (A multi-tenant service instead gives each
//! session its own telemetry via [`Executor::new`], so heterogeneous
//! graphs cannot pollute each other's estimates.)
//!
//! ## Job slot table
//!
//! One mutex-guarded queue holds every job still accepting
//! participants. A job asks for `workers` participants (its
//! [`RunState`] is sized accordingly); idle pool workers *hunt* the
//! queue in FIFO order and claim the next free participation index of
//! the first unfilled job. A job runs correctly with **any** non-empty
//! subset of its participants — readiness hunting, stealing and stall
//! detection are all worker-count-agnostic — so a job never waits for
//! its full complement; late workers simply join a run in progress,
//! and a busy pool degrades throughput, never liveness. The last
//! participant to leave a halted job finalises it: collects the
//! per-job [`Metrics`], publishes the result and fires the completion
//! callback ([`ExecutorPool::submit_with`]).
//!
//! Worker indices inside a job are *participation* indices (0 ..
//! `workers`), handed out in join order — decoupled from pool worker
//! ids, so `Metrics::worker_firings` / `worker_steals` are tallied per
//! job, never smeared across the concurrent jobs a pool worker serves
//! over its lifetime.
//!
//! ## Panic isolation
//!
//! A panicking kernel fails only its own job (the panic is converted
//! into [`RuntimeError::KernelFailed`] and the job halts); the worker
//! survives and returns to the hunt, and every other job's state is
//! untouched — which the service stress suite asserts across
//! concurrent sessions.
//!
//! ## Core pinning
//!
//! With the `core-pinning` feature on Linux, every spawned pool worker
//! pins itself to a CPU core — worker `n` takes the `n`-th core of the
//! thread's *allowed* set (wrapping), so cpuset/taskset restrictions
//! are honoured — before entering the hunt, making
//! `tpdf_manycore::Platform`'s one-PE-per-worker model physical. The
//! outcome is recorded per pool worker and attached to every pooled
//! run's [`Metrics::pinned_cores`].

use crate::checkpoint::Checkpoint;
use crate::executor::{ClockMode, CompiledExecutor, CostTelemetry, Engine, Executor, RunState};
use crate::kernel::KernelRegistry;
use crate::metrics::Metrics;
use crate::pinning::pin_to_nth_allowed_core;
use crate::RuntimeError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;
use tpdf_core::graph::TpdfGraph;
use tpdf_trace::EventKind;

/// One submitted run: everything a pool worker needs, owned, plus the
/// participation and completion accounting of the slot table.
struct PoolJob {
    engine: Arc<Engine>,
    /// Cloned from the caller's registry (cheap: behaviours are
    /// `Arc`-shared) so the `'static` workers borrow nothing.
    registry: KernelRegistry,
    state: RunState,
    /// Set by the first participant: a job queued behind a busy pool
    /// must not count its queue latency against real-time deadlines.
    start: OnceLock<Instant>,
    /// Participation slots (1 ..= pool size).
    workers: usize,
    /// Slots handed out so far. Only mutated under the slot lock.
    joined: AtomicUsize,
    /// Participants currently inside the worker loop. Only mutated
    /// under the slot lock.
    active: AtomicUsize,
    /// Exactly-once guard for finalisation. Set under the slot lock.
    finishing: AtomicBool,
    /// Set (after the result is stored) by the finaliser.
    finished: AtomicBool,
    result: Mutex<Option<Result<Metrics, RuntimeError>>>,
    /// Invoked once, after the result is published — the service
    /// layer's dispatch hook. Never called while a pool lock is held.
    on_complete: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl PoolJob {
    /// The job's start instant, initialised by the first participant.
    fn started(&self) -> Instant {
        *self.start.get_or_init(Instant::now)
    }
}

/// The finished state of a blocking pool run, handed back so a
/// checkpoint can be captured after the run quiesced: the single-worker
/// fast path keeps its state local, the slot-table path hands back the
/// finalised job (all participants have left — the finaliser is elected
/// only at `active == 0` — so reading the state races with nobody).
enum FinishedRun {
    Local(Box<RunState>),
    Pooled(Arc<PoolJob>),
}

impl FinishedRun {
    fn state(&self) -> &RunState {
        match self {
            FinishedRun::Local(state) => state,
            FinishedRun::Pooled(job) => &job.state,
        }
    }
}

/// The job slot table workers hunt over.
#[derive(Default)]
struct PoolSlot {
    /// Jobs still accepting participants, in submission order. A job
    /// leaves the queue when its last slot is claimed or when it is
    /// finalised, whichever comes first.
    queue: Vec<Arc<PoolJob>>,
    /// Spawned workers that completed their startup handshake.
    started: usize,
    shutdown: bool,
}

struct PoolShared {
    slot: Mutex<PoolSlot>,
    /// Workers wait here for new jobs (or shutdown).
    work: Condvar,
    /// Completion events: job finalised, worker started.
    done: Condvar,
    /// Core each spawned pool worker pinned itself to, indexed by pool
    /// worker id (`None` = unpinned; the calling thread of a
    /// non-detached pool is never pinned).
    pinned: Mutex<Vec<Option<usize>>>,
}

/// Claims the next participation slot of `job`, if one is free and the
/// job is not already finalising. The single source of the join-side
/// lock protocol: bump `joined`/`active` together and bar further joins
/// (queue removal) the moment the last slot is handed out. Must hold
/// the slot lock.
fn claim_participation(slot: &mut PoolSlot, job: &Arc<PoolJob>) -> Option<usize> {
    if job.finishing.load(Ordering::SeqCst) {
        return None;
    }
    let joined = job.joined.load(Ordering::SeqCst);
    if joined >= job.workers {
        return None;
    }
    job.joined.fetch_add(1, Ordering::SeqCst);
    job.active.fetch_add(1, Ordering::SeqCst);
    if joined + 1 == job.workers {
        slot.queue.retain(|j| !Arc::ptr_eq(j, job));
    }
    Some(joined)
}

/// Whether a hunting worker should pass over `job` for now: a
/// granularity-collapsed virtual-clock job that already has a
/// participant would make the joiner stand straight back down — leave
/// its re-queued slots alone until the cost estimate recovers (the
/// hunt re-evaluates on its bounded wait).
fn skip_collapsed(job: &PoolJob) -> bool {
    job.active.load(Ordering::SeqCst) > 0
        && matches!(job.engine.config().clock_mode, ClockMode::Virtual)
        && job.engine.fine_grained()
}

/// Claims the next free participation slot of the first joinable job.
/// The second field reports whether a collapsed job was *passed over*
/// — the signal that the hunt must re-poll on a timeout, since nothing
/// notifies when a cost estimate recovers. Must hold the slot lock.
fn claim_slot(slot: &mut PoolSlot) -> (Option<(Arc<PoolJob>, usize)>, bool) {
    let mut skipped = false;
    let job = slot.queue.iter().find(|j| {
        if j.joined.load(Ordering::SeqCst) >= j.workers {
            return false;
        }
        if skip_collapsed(j) {
            skipped = true;
            return false;
        }
        true
    });
    let Some(job) = job.cloned() else {
        return (None, skipped);
    };
    let claimed = claim_participation(slot, &job).map(|idx| (job, idx));
    (claimed, skipped)
}

/// Elects the caller as the job's finaliser if the job has no live
/// participant and nobody else won the election. The single source of
/// the finalisation-side lock protocol: the `finishing` swap happens
/// under the same lock as every join, and the queue removal bars late
/// joins. Returns whether the caller must run [`finalize_job`]. Must
/// hold the slot lock.
fn try_elect_finalizer(slot: &mut PoolSlot, job: &Arc<PoolJob>) -> bool {
    if job.active.load(Ordering::SeqCst) != 0 || job.finishing.swap(true, Ordering::SeqCst) {
        return false;
    }
    slot.queue.retain(|j| !Arc::ptr_eq(j, job));
    true
}

/// Runs one participation of `job` as participant `idx`. A panic is
/// contained: it fails this job (and only this job) and the calling
/// worker survives. Returns whether the worker *stood down* from a
/// granularity-collapsed run (the job keeps running on its remaining
/// participants; the caller must release the slot via [`stand_down`]
/// instead of [`leave`]).
fn participate(job: &Arc<PoolJob>, idx: usize) -> bool {
    let start = job.started();
    if let Some(tracer) = job.engine.trace() {
        tracer.event(
            idx,
            EventKind::JobClaim,
            job.state.trace_job,
            idx as u64,
            0,
            0,
        );
    }
    let single_virtual =
        job.workers == 1 && matches!(job.engine.config().clock_mode, ClockMode::Virtual);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if single_virtual {
            // The sole participant of a collapsed job takes the
            // de-synchronised fast loop, exactly as a 1-thread run.
            job.engine.run_single(&job.state, &job.registry, start);
            false
        } else {
            job.engine
                .worker_loop(&job.state, idx, &job.registry, start)
        }
    }));
    match outcome {
        Ok(stood_down) => stood_down,
        Err(_) => {
            job.engine.fail(
                &job.state,
                RuntimeError::KernelFailed {
                    node: format!("pool worker {idx}"),
                    message: "worker thread panicked".to_string(),
                },
            );
            false
        }
    }
}

/// Reports one participant done; the last one out of a halted job
/// finalises it.
fn leave(shared: &PoolShared, job: &Arc<PoolJob>) {
    let finalize = {
        let mut slot = shared.slot.lock().expect("pool lock");
        job.active.fetch_sub(1, Ordering::SeqCst);
        // A participant only returns once the job halted, so a drained
        // `active` means the run is over.
        try_elect_finalizer(&mut slot, job)
    };
    if finalize {
        finalize_job(shared, job);
    }
}

/// Releases a *stood-down* participation: the worker abandoned a
/// granularity-collapsed job that keeps running on its remaining
/// participants. The slot is handed back (`joined` decrements, unlike
/// [`leave`]) and the job re-queued, so the slot can be re-claimed if
/// the cost estimate later recovers — the hunt skips it while the
/// collapse holds ([`skip_collapsed`]).
fn stand_down(shared: &PoolShared, job: &Arc<PoolJob>) {
    let finalize = {
        let mut slot = shared.slot.lock().expect("pool lock");
        job.joined.fetch_sub(1, Ordering::SeqCst);
        job.active.fetch_sub(1, Ordering::SeqCst);
        if job.active.load(Ordering::SeqCst) == 0 {
            // The other participants raced out (the run halted just as
            // we stood down): fall back to the normal election.
            try_elect_finalizer(&mut slot, job)
        } else {
            if !job.finishing.load(Ordering::SeqCst)
                && !slot.queue.iter().any(|j| Arc::ptr_eq(j, job))
            {
                slot.queue.push(Arc::clone(job));
            }
            false
        }
    };
    if finalize {
        finalize_job(shared, job);
    }
}

/// Collects the job's metrics, publishes the result, wakes waiters and
/// fires the completion callback. Requires the `finishing` election.
fn finalize_job(shared: &PoolShared, job: &Arc<PoolJob>) {
    let elapsed = job.start.get().map(|s| s.elapsed()).unwrap_or_default();
    let mut result = job.engine.collect_metrics(&job.state, elapsed, job.workers);
    if let Ok(metrics) = &mut result {
        metrics.pinned_cores = shared.pinned.lock().expect("pinning lock").clone();
    }
    if let Some(tracer) = job.engine.trace() {
        tracer.control_event(
            EventKind::JobFinalize,
            job.state.trace_job,
            0,
            result.is_err() as u64,
            0,
        );
    }
    *job.result.lock().expect("result lock") = Some(result);
    job.finished.store(true, Ordering::Release);
    // Pass through the mutex so a waiter that checked `finished` but
    // has not yet blocked on the condvar is not lost.
    drop(shared.slot.lock().expect("pool lock"));
    shared.done.notify_all();
    let callback = job.on_complete.lock().expect("callback lock").take();
    if let Some(callback) = callback {
        callback();
    }
}

/// Blocks until the job is finalised and takes its result. The result
/// is delivered once: if it was already taken (an earlier
/// [`JobTicket::try_take`]), this reports an error rather than
/// panicking.
fn wait_finished(shared: &PoolShared, job: &Arc<PoolJob>) -> Result<Metrics, RuntimeError> {
    let mut slot = shared.slot.lock().expect("pool lock");
    while !job.finished.load(Ordering::Acquire) {
        slot = shared.done.wait(slot).expect("pool lock");
    }
    drop(slot);
    job.result
        .lock()
        .expect("result lock")
        .take()
        .unwrap_or(Err(RuntimeError::InvalidConfig(
            "the job's result was already taken".to_string(),
        )))
}

/// A persistent executor worker pool multiplexed over a slot table of
/// concurrently active jobs (see the module docs). Workers are spawned
/// at construction, parked between jobs, shut down on drop; repeated
/// runs pay **no spawn cost** and telemetry (EWMA firing costs,
/// granularity classification) carries across runs and across
/// executors built through [`ExecutorPool::executor`].
///
/// # Examples
///
/// ```
/// use tpdf_core::examples::figure2_graph;
/// use tpdf_runtime::{ExecutorPool, KernelRegistry, RuntimeConfig};
/// use tpdf_symexpr::Binding;
///
/// # fn main() -> Result<(), tpdf_runtime::RuntimeError> {
/// let graph = figure2_graph();
/// let pool = ExecutorPool::new(2);
/// let executor = pool.executor(
///     &graph,
///     RuntimeConfig::new(Binding::from_pairs([("p", 2)])).with_threads(2),
/// )?;
/// let registry = KernelRegistry::new();
/// for _ in 0..3 {
///     // No worker spawns after the first line of main.
///     let metrics = pool.run(&executor, &registry)?;
///     assert_eq!(metrics.iterations, 1);
/// }
/// // Asynchronous submission: the same pool, no caller participation.
/// let ticket = pool.submit(&executor.compile(), &registry);
/// let metrics = ticket.wait()?;
/// assert_eq!(metrics.iterations, 1);
/// # Ok(())
/// # }
/// ```
pub struct ExecutorPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    telemetry: Arc<CostTelemetry>,
    threads: usize,
    /// Monotone trace tags handed to jobs whose config left
    /// [`crate::executor::RuntimeConfig::trace_tag`] at 0 (see
    /// [`tag_job`](Self::tag_job)).
    job_tags: AtomicU32,
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("threads", &self.threads)
            .field("spawned_workers", &self.handles.len())
            .finish()
    }
}

impl ExecutorPool {
    /// Spawns a pool of `threads` workers (clamped to ≥ 1) for
    /// *caller-participating* use: `threads - 1` OS threads are created
    /// here, and the thread calling [`ExecutorPool::run`] serves as the
    /// remaining worker. For a pool that executes
    /// [`ExecutorPool::submit`]ted jobs without any caller thread —
    /// what a service hosts — use [`ExecutorPool::detached`].
    pub fn new(threads: usize) -> Self {
        Self::build(threads, false)
    }

    /// Spawns a *detached* pool: all `threads` workers (clamped to ≥ 1)
    /// are OS threads owned by the pool, so [`ExecutorPool::submit`]ted
    /// jobs run to completion with no caller participation — the shape
    /// a multi-session service needs.
    pub fn detached(threads: usize) -> Self {
        Self::build(threads, true)
    }

    fn build(threads: usize, detached: bool) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(PoolSlot::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            pinned: Mutex::new(vec![None; threads]),
        });
        let first = if detached { 0 } else { 1 };
        let handles: Vec<JoinHandle<()>> = (first..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tpdf-pool-{me}"))
                    .spawn(move || pool_worker(shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        // Startup handshake: wait until every spawned worker recorded
        // its pinning outcome, so `pinned_cores` is deterministic from
        // the first run on.
        {
            let mut slot = shared.slot.lock().expect("pool lock");
            while slot.started < handles.len() {
                slot = shared.done.wait(slot).expect("pool lock");
            }
        }
        ExecutorPool {
            shared,
            handles,
            telemetry: Arc::new(CostTelemetry::default()),
            threads,
            job_tags: AtomicU32::new(0),
        }
    }

    /// Stamps an untagged job's run state with a fresh pool-assigned
    /// trace tag and records the submission. Pool-assigned tags live in
    /// the upper half of the tag space (`0x8000_0000 |`) so they never
    /// collide with the small tags a service assigns per session.
    fn tag_job(&self, engine: &Engine, state: &mut RunState, workers: usize) {
        if state.trace_job == 0 {
            state.trace_job = 0x8000_0000 | (self.job_tags.fetch_add(1, Ordering::Relaxed) + 1);
        }
        if let Some(tracer) = engine.trace() {
            tracer.control_event(EventKind::JobSubmit, state.trace_job, workers as u64, 0, 0);
        }
    }

    /// The pool's worker count (including, for a non-detached pool, the
    /// caller acting as a participant of [`ExecutorPool::run`]).
    /// Constant for the pool's lifetime — the reuse suite asserts no
    /// run grows it.
    pub fn worker_count(&self) -> usize {
        self.threads
    }

    /// OS threads this pool spawned: `worker_count() - 1` for a pool
    /// built with [`ExecutorPool::new`], `worker_count()` for a
    /// [`ExecutorPool::detached`] one.
    pub fn spawned_workers(&self) -> usize {
        self.handles.len()
    }

    /// Core-pinning outcome per pool worker (`Some(core)` where the
    /// `core-pinning` feature pinned the worker's OS thread). All
    /// `None` when the feature is off, on non-Linux hosts, or for the
    /// never-pinned caller slot of a non-detached pool.
    pub fn pinned_cores(&self) -> Vec<Option<usize>> {
        self.shared.pinned.lock().expect("pinning lock").clone()
    }

    /// The pool-wide firing-cost estimate in nanoseconds (an EWMA over
    /// the sampled firings of every run executed on this pool through
    /// executors built by [`ExecutorPool::executor`]), or `None` before
    /// the first sample.
    pub fn sampled_firing_cost_ns(&self) -> Option<u64> {
        self.telemetry.sampled_firing_cost_ns()
    }

    /// Builds an executor whose firing-cost telemetry is shared with
    /// this pool, so granularity classification survives across
    /// executors (e.g. across the phases of a reconfigured pipeline
    /// running the same graph). Heterogeneous tenants should build
    /// their executors with [`Executor::new`] instead — a shared
    /// estimate lets one tenant's cheap kernels collapse another's
    /// runs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::new`].
    pub fn executor<'g>(
        &self,
        graph: &'g TpdfGraph,
        config: crate::executor::RuntimeConfig,
    ) -> Result<Executor<'g>, RuntimeError> {
        Executor::with_telemetry(graph, config, Arc::clone(&self.telemetry))
    }

    /// Executes one run of `executor` on the pool and reports
    /// [`Metrics`], blocking until completion. Semantically identical
    /// to [`Executor::run`] — placement, determinism and clock handling
    /// are the same shared worker loop — but no thread is spawned: the
    /// caller is participant 0 and pool workers fill the remaining
    /// slots. The run engages up to `min(executor threads, pool size)`
    /// participants (the granularity heuristic may collapse that to 1),
    /// and runs concurrently with any other job active on the pool.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run`].
    pub fn run(
        &self,
        executor: &Executor<'_>,
        registry: &KernelRegistry,
    ) -> Result<Metrics, RuntimeError> {
        let engine = Arc::clone(executor.engine());
        let workers = engine.effective_workers().min(self.threads);
        let state = engine.initial_state(workers);
        self.run_to_completion(engine, state, workers, registry).0
    }

    /// Like [`ExecutorPool::run`], additionally capturing a
    /// barrier-consistent [`Checkpoint`] of the run's final state —
    /// the pooled counterpart of [`Executor::run_checkpointed`], and
    /// what a service's `checkpoint_session` drains onto.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutorPool::run`].
    pub fn run_checkpointed(
        &self,
        compiled: &CompiledExecutor,
        registry: &KernelRegistry,
    ) -> Result<(Metrics, Checkpoint), RuntimeError> {
        let engine = Arc::clone(compiled.engine());
        let workers = engine.effective_workers().min(self.threads);
        let state = engine.initial_state(workers);
        let (result, finished) =
            self.run_to_completion(Arc::clone(&engine), state, workers, registry);
        let metrics = result?;
        let checkpoint = engine.capture_checkpoint(finished.state(), &metrics);
        Ok((metrics, checkpoint))
    }

    /// Resumes a checkpointed run on this pool — possibly a different
    /// pool, with a different worker count and placement, than the one
    /// that checkpointed it. Sink streams, mode sequences and firing
    /// counts are byte-identical to a run that never stopped.
    ///
    /// # Errors
    ///
    /// * [`RuntimeError::Checkpoint`] when the checkpoint belongs to a
    ///   different graph or leaves nothing to resume;
    /// * otherwise the same conditions as [`ExecutorPool::run`].
    pub fn run_restored(
        &self,
        compiled: &CompiledExecutor,
        registry: &KernelRegistry,
        checkpoint: &Checkpoint,
    ) -> Result<Metrics, RuntimeError> {
        let engine = Arc::clone(compiled.engine());
        let workers = engine.effective_workers().min(self.threads);
        let state = engine.restore_state(checkpoint, workers)?;
        self.run_to_completion(engine, state, workers, registry).0
    }

    /// Resumes a checkpointed run and captures a fresh [`Checkpoint`]
    /// at its final barrier — the chaining primitive for *periodic*
    /// checkpointing: run to barrier 8, checkpoint, restore into a
    /// barrier-16 executor, checkpoint again, and so on. The
    /// `figure2_checkpoint` bench group guards the overhead of exactly
    /// that chain.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExecutorPool::run_restored`].
    pub fn run_restored_checkpointed(
        &self,
        compiled: &CompiledExecutor,
        registry: &KernelRegistry,
        checkpoint: &Checkpoint,
    ) -> Result<(Metrics, Checkpoint), RuntimeError> {
        let engine = Arc::clone(compiled.engine());
        let workers = engine.effective_workers().min(self.threads);
        let state = engine.restore_state(checkpoint, workers)?;
        let (result, finished) =
            self.run_to_completion(Arc::clone(&engine), state, workers, registry);
        let metrics = result?;
        let next = engine.capture_checkpoint(finished.state(), &metrics);
        Ok((metrics, next))
    }

    /// Drives `state` to completion on the pool, the caller
    /// participating as worker 0 — the execution core shared by
    /// [`ExecutorPool::run`] and its checkpoint/restore variants. The
    /// finished state rides back alongside the result so a checkpoint
    /// can be captured from it after the run quiesces.
    fn run_to_completion(
        &self,
        engine: Arc<Engine>,
        mut state: RunState,
        workers: usize,
        registry: &KernelRegistry,
    ) -> (Result<Metrics, RuntimeError>, FinishedRun) {
        self.tag_job(&engine, &mut state, workers);
        let start = Instant::now();
        let virtual_clocks = matches!(engine.config().clock_mode, ClockMode::Virtual);
        if workers == 1 && virtual_clocks {
            // The collapsed single-worker fast path never touches the
            // slot table: the calling thread runs the de-synchronised
            // loop directly, exactly as the scoped path does.
            engine.run_single(&state, registry, start);
            let mut metrics = engine.collect_metrics(&state, start.elapsed(), 1);
            if let Ok(m) = &mut metrics {
                m.pinned_cores = self.pinned_cores();
            }
            return (metrics, FinishedRun::Local(Box::new(state)));
        }

        let job = Arc::new(PoolJob {
            engine,
            registry: registry.clone(),
            state,
            start: OnceLock::new(),
            workers,
            // The caller pre-claims participation slot 0 — same
            // division of labour as the scoped path, so a 1-worker
            // pooled run involves no other thread at all.
            joined: AtomicUsize::new(1),
            active: AtomicUsize::new(1),
            finishing: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            result: Mutex::new(None),
            on_complete: Mutex::new(None),
        });
        job.start.set(start).expect("fresh job");
        if workers > 1 {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.queue.push(Arc::clone(&job));
            drop(slot);
            self.shared.work.notify_all();
        }
        if let Some(tracer) = job.engine.trace() {
            tracer.event(0, EventKind::JobClaim, job.state.trace_job, 0, 0, 0);
        }
        // A caller-side panic is caught so the halt can be published
        // and the secondaries drained (otherwise they would hold their
        // participation forever), then re-raised to preserve the scoped
        // path's panic semantics.
        let caller = catch_unwind(AssertUnwindSafe(|| {
            job.engine.worker_loop(&job.state, 0, &job.registry, start)
        }));
        if caller.is_err() {
            job.engine.fail(
                &job.state,
                RuntimeError::KernelFailed {
                    node: "pool worker 0".to_string(),
                    message: "worker thread panicked".to_string(),
                },
            );
        }
        leave(&self.shared, &job);
        let result = wait_finished(&self.shared, &job);
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        (result, FinishedRun::Pooled(job))
    }

    /// Queues one run of `compiled` for asynchronous execution by the
    /// pool workers and returns immediately. The job runs concurrently
    /// with every other active job; the caller does not participate.
    ///
    /// On a pool with no spawned workers (`ExecutorPool::new(1)`) the
    /// job only progresses when some thread lends itself through
    /// [`JobTicket::wait`] — a service should host a
    /// [`ExecutorPool::detached`] pool.
    pub fn submit(&self, compiled: &CompiledExecutor, registry: &KernelRegistry) -> JobTicket {
        self.submit_job(compiled, registry, None)
    }

    /// Like [`ExecutorPool::submit`], additionally invoking
    /// `on_complete` exactly once after the job's result is published
    /// (from a pool worker thread, with no pool lock held) — the hook a
    /// service layer uses to dispatch a session's next queued request.
    pub fn submit_with(
        &self,
        compiled: &CompiledExecutor,
        registry: &KernelRegistry,
        on_complete: impl FnOnce() + Send + 'static,
    ) -> JobTicket {
        self.submit_job(compiled, registry, Some(Box::new(on_complete)))
    }

    fn submit_job(
        &self,
        compiled: &CompiledExecutor,
        registry: &KernelRegistry,
        on_complete: Option<Box<dyn FnOnce() + Send>>,
    ) -> JobTicket {
        let engine = Arc::clone(compiled.engine());
        let workers = engine.effective_workers().min(self.threads);
        let mut state = engine.initial_state(workers);
        self.tag_job(&engine, &mut state, workers);
        let job = Arc::new(PoolJob {
            engine,
            registry: registry.clone(),
            state,
            start: OnceLock::new(),
            workers,
            joined: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            finishing: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            result: Mutex::new(None),
            on_complete: Mutex::new(on_complete),
        });
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.queue.push(Arc::clone(&job));
        }
        self.shared.work.notify_all();
        JobTicket {
            shared: Arc::clone(&self.shared),
            job,
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.shutdown = true;
        }
        self.shared.work.notify_all();
        // The pool can be dropped *from one of its own workers*: a
        // completion callback owns an `Arc` of the pool (that is how a
        // service dispatches follow-up work), and the worker dropping
        // the consumed callback may hold the last reference. That
        // worker cannot join itself — detach it instead; it exits on
        // its own the moment it observes the shutdown flag.
        let current = std::thread::current().id();
        for handle in self.handles.drain(..) {
            if handle.thread().id() == current {
                continue;
            }
            let _ = handle.join();
        }
        // Jobs still queued with no participant will never gain one
        // (the workers are gone): finalise them as cancelled so any
        // outstanding ticket resolves instead of hanging. Jobs with a
        // live participant (a `JobTicket::wait` helper on another
        // thread) are left to that helper's finalisation.
        let leftovers: Vec<Arc<PoolJob>> = {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.queue
                .clone()
                .into_iter()
                .filter(|job| try_elect_finalizer(&mut slot, job))
                .collect()
        };
        for job in leftovers {
            job.engine.cancel_run(&job.state);
            finalize_job(&self.shared, &job);
        }
    }
}

/// A handle on one [`ExecutorPool::submit`]ted job. Clones share the
/// job: the result is delivered once across all clones (first
/// [`JobTicket::try_take`] / [`JobTicket::wait`] wins).
#[derive(Clone)]
pub struct JobTicket {
    shared: Arc<PoolShared>,
    job: Arc<PoolJob>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("workers", &self.job.workers)
            .field("joined", &self.job.joined.load(Ordering::Relaxed))
            .field("finished", &self.job.finished.load(Ordering::Relaxed))
            .finish()
    }
}

impl JobTicket {
    /// Whether the job has been finalised (its result is available).
    pub fn is_finished(&self) -> bool {
        self.job.finished.load(Ordering::Acquire)
    }

    /// Takes the job's result if it is finished, `None` otherwise (or
    /// if the result was already taken).
    pub fn try_take(&self) -> Option<Result<Metrics, RuntimeError>> {
        if !self.is_finished() {
            return None;
        }
        self.job.result.lock().expect("result lock").take()
    }

    /// Blocks until the job completes and returns its [`Metrics`].
    ///
    /// If the job still has a free participation slot, the waiting
    /// thread lends itself as a participant first — so waiting makes
    /// progress even on a pool with no (or saturated) workers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run`], plus
    /// [`RuntimeError::Cancelled`] when the job was cancelled, and
    /// [`RuntimeError::InvalidConfig`] when the result was already
    /// taken through [`JobTicket::try_take`].
    pub fn wait(self) -> Result<Metrics, RuntimeError> {
        let idx = {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            claim_participation(&mut slot, &self.job)
        };
        if let Some(idx) = idx {
            if participate(&self.job, idx) {
                stand_down(&self.shared, &self.job);
            } else {
                leave(&self.shared, &self.job);
            }
        }
        wait_finished(&self.shared, &self.job)
    }

    /// Cancels the job: the run halts at the next scheduling point and
    /// finalises with [`RuntimeError::Cancelled`] (an error already
    /// recorded by the run itself takes precedence, and a run that
    /// already *completed* keeps its successful result). A job no
    /// worker has picked up yet is finalised immediately; a running
    /// job's participants observe the halt and drain. Idempotent.
    pub fn cancel(&self) {
        self.job.engine.cancel_run(&self.job.state);
        let finalize = {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            try_elect_finalizer(&mut slot, &self.job)
        };
        if finalize {
            finalize_job(&self.shared, &self.job);
        }
    }
}

/// The persistent worker loop: pin (when enabled), handshake, then hunt
/// the job queue — claim a participation slot, run the shared engine
/// worker loop, report completion, repeat until shutdown.
fn pool_worker(shared: Arc<PoolShared>, me: usize) {
    // Worker `me` takes the `me`-th core of the thread's *allowed* set
    // (wrapping), so pinning survives cpuset/taskset restrictions.
    let pinned = pin_to_nth_allowed_core(me);
    {
        let mut record = shared.pinned.lock().expect("pinning lock");
        record[me] = pinned;
    }
    {
        let mut slot = shared.slot.lock().expect("pool lock");
        slot.started += 1;
    }
    shared.done.notify_all();
    loop {
        let (job, idx) = {
            let mut slot = shared.slot.lock().expect("pool lock");
            loop {
                if slot.shutdown {
                    return;
                }
                let (claimed, skipped_collapsed) = claim_slot(&mut slot);
                if let Some(claimed) = claimed {
                    break claimed;
                }
                // An empty queue blocks until notified; a queue holding
                // only passed-over collapsed jobs is re-polled on a
                // timeout, since nothing notifies when a cost estimate
                // recovers.
                slot = if skipped_collapsed {
                    shared
                        .work
                        .wait_timeout(slot, std::time::Duration::from_millis(100))
                        .expect("pool lock")
                        .0
                } else {
                    shared.work.wait(slot).expect("pool lock")
                };
            }
        };
        if participate(&job, idx) {
            stand_down(&shared, &job);
        } else {
            leave(&shared, &job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{PlacementPolicy, RuntimeConfig};
    use crate::token::Token;
    use tpdf_core::examples::figure2_graph;
    use tpdf_manycore::MappingStrategy;
    use tpdf_symexpr::Binding;

    fn binding(p: i64) -> Binding {
        Binding::from_pairs([("p", p)])
    }

    #[test]
    fn pooled_runs_match_scoped_runs() {
        let graph = figure2_graph();
        let registry = KernelRegistry::new();
        let pool = ExecutorPool::new(4);
        for placement in [
            PlacementPolicy::WorkStealing,
            PlacementPolicy::Affinity(MappingStrategy::RoundRobin),
        ] {
            let config = RuntimeConfig::new(binding(3))
                .with_threads(4)
                .with_iterations(3)
                .with_placement(placement);
            let scoped = Executor::new(&graph, config.clone())
                .unwrap()
                .run(&registry)
                .unwrap();
            let executor = pool.executor(&graph, config).unwrap();
            let pooled = pool.run(&executor, &registry).unwrap();
            assert_eq!(pooled.firings, scoped.firings, "{placement:?}");
            assert_eq!(pooled.tokens_pushed, scoped.tokens_pushed, "{placement:?}");
            assert_eq!(pooled.iterations, 3);
            assert_eq!(pooled.placement, placement);
            assert_eq!(
                pooled.worker_firings.iter().sum::<u64>(),
                pooled.firings.iter().sum::<u64>(),
                "per-worker firings must account for every firing"
            );
        }
    }

    #[test]
    fn pool_clamps_oversized_executor_thread_counts() {
        let graph = figure2_graph();
        let pool = ExecutorPool::new(2);
        let executor = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(8))
            .unwrap();
        let metrics = pool.run(&executor, &KernelRegistry::new()).unwrap();
        assert!(metrics.effective_workers <= 2);
        assert_eq!(metrics.worker_firings.len(), metrics.effective_workers);
    }

    /// Regression (from the single-slot pool): a pool wider than a
    /// run's worker count leaves idle workers racing the finaliser's
    /// queue cleanup — a worker waking late used to panic on the
    /// cleared job slot and poison the pool mutex. Real-time mode keeps
    /// the multi-worker publish path (no granularity collapse), and
    /// many tiny back-to-back runs make the window hit.
    #[test]
    fn sit_out_workers_survive_rapid_generations() {
        let graph = figure2_graph();
        let pool = ExecutorPool::new(8);
        let registry = KernelRegistry::new();
        let config = RuntimeConfig::new(binding(1))
            .with_threads(2)
            .with_real_time(std::time::Duration::from_micros(1));
        let executor = pool.executor(&graph, config).unwrap();
        for _ in 0..500 {
            let metrics = pool.run(&executor, &registry).unwrap();
            assert_eq!(metrics.iterations, 1);
        }
    }

    #[test]
    fn pool_survives_a_panicking_kernel() {
        let graph = figure2_graph();
        let pool = ExecutorPool::new(2);
        let mut bad = KernelRegistry::new();
        bad.register_fn("B", |_| panic!("kernel bug"));
        // A panic on a secondary worker is converted into an error (a
        // panic on the caller propagates, which scoped runs do too).
        // Either way the pool must stay serviceable afterwards.
        let config = RuntimeConfig::new(binding(2)).with_threads(2);
        let executor = pool.executor(&graph, config).unwrap();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(&executor, &bad)));
        // `Err` means the caller-side worker hit the panic itself.
        if let Ok(result) = outcome {
            assert!(result.is_err(), "panicking kernel must fail the run");
        }
        let mut good = KernelRegistry::new();
        good.register_fn("B", |ctx| {
            ctx.fill_outputs_cycling(&[Token::Int(1)]);
            Ok(())
        });
        let metrics = pool.run(&executor, &good).unwrap();
        assert_eq!(metrics.iterations, 1);
    }

    #[test]
    fn submitted_jobs_run_without_caller_participation() {
        let graph = figure2_graph();
        let pool = ExecutorPool::detached(2);
        let registry = KernelRegistry::new();
        let config = RuntimeConfig::new(binding(3))
            .with_threads(2)
            .with_iterations(4);
        let reference = Executor::new(&graph, config.clone())
            .unwrap()
            .run(&registry)
            .unwrap();
        let compiled = pool.executor(&graph, config).unwrap().compile();
        let ticket = pool.submit(&compiled, &registry);
        let metrics = ticket.wait().unwrap();
        assert_eq!(metrics.firings, reference.firings);
        assert_eq!(metrics.iterations, 4);
    }

    #[test]
    fn many_concurrent_jobs_share_one_pool() {
        let graph = figure2_graph();
        let pool = ExecutorPool::detached(4);
        let registry = KernelRegistry::new();
        let mut tickets = Vec::new();
        let mut references = Vec::new();
        for p in [1i64, 2, 3, 4, 2, 3] {
            let config = RuntimeConfig::new(binding(p))
                .with_threads(2)
                .with_iterations(3);
            references.push(
                Executor::new(&graph, config.clone())
                    .unwrap()
                    .run(&registry)
                    .unwrap(),
            );
            let compiled = pool.executor(&graph, config).unwrap().compile();
            tickets.push(pool.submit(&compiled, &registry));
        }
        for (ticket, reference) in tickets.into_iter().zip(&references) {
            let metrics = ticket.wait().unwrap();
            assert_eq!(metrics.firings, reference.firings);
            // Per-job tally: every firing of this job is accounted to
            // one of this job's participation slots.
            assert_eq!(
                metrics.worker_firings.iter().sum::<u64>(),
                metrics.firings.iter().sum::<u64>()
            );
        }
    }

    #[test]
    fn wait_drives_jobs_on_a_pool_with_no_spawned_workers() {
        let graph = figure2_graph();
        let pool = ExecutorPool::new(1);
        assert_eq!(pool.spawned_workers(), 0);
        let registry = KernelRegistry::new();
        let compiled = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(1))
            .unwrap()
            .compile();
        let ticket = pool.submit(&compiled, &registry);
        assert!(!ticket.is_finished());
        let metrics = ticket.wait().unwrap();
        assert_eq!(metrics.iterations, 1);
    }

    #[test]
    fn wait_after_try_take_reports_instead_of_panicking() {
        let graph = figure2_graph();
        let pool = ExecutorPool::detached(2);
        let registry = KernelRegistry::new();
        let compiled = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(1))
            .unwrap()
            .compile();
        let ticket = pool.submit(&compiled, &registry);
        // Spin until the workers finish the job, then drain the result.
        while !ticket.is_finished() {
            std::thread::yield_now();
        }
        assert!(matches!(ticket.try_take(), Some(Ok(_))));
        assert_eq!(ticket.try_take(), None, "the result is delivered once");
        assert!(matches!(ticket.wait(), Err(RuntimeError::InvalidConfig(_))));
    }

    #[test]
    fn cancelled_queued_job_resolves_immediately() {
        let graph = figure2_graph();
        // No spawned workers: the job can never start, so cancel must
        // finalise it right away.
        let pool = ExecutorPool::new(1);
        let registry = KernelRegistry::new();
        let compiled = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(1))
            .unwrap()
            .compile();
        let ticket = pool.submit(&compiled, &registry);
        ticket.cancel();
        assert!(ticket.is_finished());
        assert!(matches!(
            ticket.try_take(),
            Some(Err(RuntimeError::Cancelled))
        ));
    }

    #[test]
    fn cancel_after_completion_keeps_the_real_result() {
        let graph = figure2_graph();
        let pool = ExecutorPool::detached(2);
        let registry = KernelRegistry::new();
        let compiled = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(1))
            .unwrap()
            .compile();
        let ticket = pool.submit(&compiled, &registry);
        while !ticket.is_finished() {
            std::thread::yield_now();
        }
        // A completed run's outcome must survive a late cancellation.
        ticket.cancel();
        assert!(matches!(ticket.try_take(), Some(Ok(_))));
    }

    /// Regression: secondaries of a granularity-collapsed job must
    /// *return to the hunt* rather than nap until the job ends —
    /// otherwise one long fine-grained job hoards the whole pool and
    /// concurrently queued jobs starve.
    #[test]
    fn collapsed_job_secondaries_serve_other_queued_jobs() {
        let graph = figure2_graph();
        let pool = ExecutorPool::detached(2);
        let registry = KernelRegistry::new();
        // A long, cheap job asking for the whole pool: both workers
        // join while the telemetry is cold; within a few samples the
        // EWMA classifies figure2's rate-only kernels fine-grained and
        // the secondary stands down.
        let long = pool
            .executor(
                &graph,
                RuntimeConfig::new(binding(8))
                    .with_threads(2)
                    .with_iterations(20_000),
            )
            .unwrap()
            .compile();
        let long_ticket = pool.submit(&long, &registry);
        let short = pool
            .executor(&graph, RuntimeConfig::new(binding(1)).with_threads(1))
            .unwrap()
            .compile();
        let short_ticket = pool.submit(&short, &registry);
        // The freed secondary must pick the short job up and finish it
        // long before the 20k-iteration job ends (generous deadline —
        // the stand-down is bounded by the stall timeout).
        let deadline = Instant::now() + std::time::Duration::from_secs(20);
        while !short_ticket.is_finished() {
            assert!(
                Instant::now() < deadline,
                "short job starved behind a collapsed long job"
            );
            std::thread::yield_now();
        }
        assert!(matches!(short_ticket.try_take(), Some(Ok(_))));
        long_ticket.wait().unwrap();
    }

    #[test]
    fn panicking_job_does_not_poison_concurrent_jobs() {
        let graph = figure2_graph();
        let pool = ExecutorPool::detached(2);
        let mut bad = KernelRegistry::new();
        bad.register_fn("B", |_| panic!("kernel bug"));
        let good_registry = KernelRegistry::new();
        let config = RuntimeConfig::new(binding(2))
            .with_threads(1)
            .with_iterations(50);
        let compiled = pool.executor(&graph, config).unwrap().compile();
        let bad_ticket = pool.submit(&compiled, &bad);
        let good_ticket = pool.submit(&compiled, &good_registry);
        assert!(bad_ticket.wait().is_err(), "panicking job must fail");
        let metrics = good_ticket.wait().unwrap();
        assert_eq!(metrics.iterations, 50, "neighbour job must be untouched");
    }

    #[test]
    fn completion_callback_fires_once_after_result() {
        let graph = figure2_graph();
        let pool = ExecutorPool::detached(2);
        let registry = KernelRegistry::new();
        let compiled = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(1))
            .unwrap()
            .compile();
        let fired = Arc::new(AtomicUsize::new(0));
        let observer = Arc::clone(&fired);
        let ticket = pool.submit_with(&compiled, &registry, move || {
            observer.fetch_add(1, Ordering::SeqCst);
        });
        let metrics = ticket.wait().unwrap();
        assert_eq!(metrics.iterations, 1);
        // The callback runs on the finalising worker *after* the result
        // is published — waiters are not ordered against it, so give
        // the worker a moment to get there.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while fired.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pinned_cores_report_matches_feature_state() {
        let pool = ExecutorPool::detached(2);
        let pinned = pool.pinned_cores();
        assert_eq!(pinned.len(), 2);
        if cfg!(all(
            feature = "core-pinning",
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(
                pinned.iter().all(|c| c.is_some()),
                "every detached worker must pin under the feature: {pinned:?}"
            );
        } else {
            assert!(pinned.iter().all(|c| c.is_none()));
        }
        // The outcome rides along on every pooled run's metrics.
        let graph = figure2_graph();
        let registry = KernelRegistry::new();
        let compiled = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(2))
            .unwrap()
            .compile();
        let metrics = pool.submit(&compiled, &registry).wait().unwrap();
        assert_eq!(metrics.pinned_cores, pinned);
    }
}

//! A persistent worker pool servicing repeated `run` calls.
//!
//! [`crate::executor::Executor::run`] spawns its secondary workers with
//! [`std::thread::scope`] and joins them before returning — correct,
//! but the spawn/join pair is paid on *every* run, the last fixed
//! per-run overhead in a steady-state serving loop. An [`ExecutorPool`]
//! spawns its workers **once**; between runs they park on the pool's
//! condvar, and each `run` call hands them an owned job
//! ([`RunJob`]: engine + cloned registry + fresh run state behind one
//! `Arc`) so the long-lived threads never borrow caller state.
//!
//! The pool also owns the firing-cost telemetry
//! ([`crate::executor::Executor::sampled_firing_cost_ns`]'s EWMA):
//! executors built through [`ExecutorPool::executor`] share it, so the
//! granularity classification learned in one run — "this graph is too
//! fine-grained to distribute" — survives into the next run *and* into
//! the next executor, which then starts on the collapsed single-worker
//! fast path without re-sampling from scratch.
//!
//! ## Handover protocol
//!
//! One mutex-guarded [`PoolSlot`] carries a generation counter and the
//! current job. `run` publishes the job, bumps the generation and wakes
//! every worker; workers with an index below the job's worker count
//! enter the ordinary [`crate::executor::Engine`] worker loop (the
//! *same* loop the scoped path uses — placement, stealing, parking and
//! the iteration barrier are shared code), then decrement the active
//! count and go back to waiting for the next generation. The caller is
//! always worker 0, exactly as in the scoped path, and collects the
//! metrics once the active count drains to zero. A fresh submission
//! first waits out any stragglers of the previous generation, so a
//! caller that aborted mid-collection can never corrupt the next run's
//! accounting.

use crate::executor::{CostTelemetry, Engine, Executor, RunState, RuntimeConfig};
use crate::kernel::KernelRegistry;
use crate::metrics::Metrics;
use crate::RuntimeError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use tpdf_core::graph::TpdfGraph;

/// One submitted run: everything a pool worker needs, owned.
struct RunJob {
    engine: Arc<Engine>,
    /// Cloned from the caller's registry (cheap: behaviours are
    /// `Arc`-shared) so the `'static` workers borrow nothing.
    registry: KernelRegistry,
    state: RunState,
    start: Instant,
    /// Workers participating in this run (1 ..= pool size); workers
    /// with a higher index skip the generation entirely.
    workers: usize,
}

/// The generation-stamped job slot workers wait on.
#[derive(Default)]
struct PoolSlot {
    job: Option<Arc<RunJob>>,
    /// Bumped per submission; a worker runs each generation once.
    generation: u64,
    /// Participating workers still inside the current generation.
    active: usize,
    shutdown: bool,
}

struct PoolShared {
    slot: Mutex<PoolSlot>,
    /// Workers wait here for the next generation (or shutdown).
    work: Condvar,
    /// The submitter waits here for `active` to drain to zero.
    done: Condvar,
}

/// A persistent executor worker pool: `threads - 1` OS threads spawned
/// at construction (the calling thread is always worker 0), parked
/// between runs, shut down on drop. Repeated [`ExecutorPool::run`]
/// calls therefore pay **no spawn cost**, and telemetry (EWMA firing
/// costs, granularity classification) carries across runs and across
/// executors built through [`ExecutorPool::executor`].
///
/// # Examples
///
/// ```
/// use tpdf_core::examples::figure2_graph;
/// use tpdf_runtime::{ExecutorPool, KernelRegistry, RuntimeConfig};
/// use tpdf_symexpr::Binding;
///
/// # fn main() -> Result<(), tpdf_runtime::RuntimeError> {
/// let graph = figure2_graph();
/// let pool = ExecutorPool::new(2);
/// let executor = pool.executor(
///     &graph,
///     RuntimeConfig::new(Binding::from_pairs([("p", 2)])).with_threads(2),
/// )?;
/// let registry = KernelRegistry::new();
/// for _ in 0..3 {
///     // No worker spawns after the first line of main.
///     let metrics = pool.run(&executor, &registry)?;
///     assert_eq!(metrics.iterations, 1);
/// }
/// # Ok(())
/// # }
/// ```
pub struct ExecutorPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    telemetry: Arc<CostTelemetry>,
    threads: usize,
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("threads", &self.threads)
            .field("spawned_workers", &self.handles.len())
            .finish()
    }
}

impl ExecutorPool {
    /// Spawns a pool of `threads` workers (clamped to ≥ 1). `threads -
    /// 1` OS threads are created here and only here; the thread calling
    /// [`ExecutorPool::run`] serves as worker 0.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(PoolSlot::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tpdf-pool-{me}"))
                    .spawn(move || pool_worker(shared, me))
                    .expect("spawn pool worker")
            })
            .collect();
        ExecutorPool {
            shared,
            handles,
            telemetry: Arc::new(CostTelemetry::default()),
            threads,
        }
    }

    /// The pool's worker count (including the caller acting as
    /// worker 0). Constant for the pool's lifetime — the reuse suite
    /// asserts no run grows it.
    pub fn worker_count(&self) -> usize {
        self.threads
    }

    /// OS threads this pool spawned (`worker_count() - 1`).
    pub fn spawned_workers(&self) -> usize {
        self.handles.len()
    }

    /// The pool-wide firing-cost estimate in nanoseconds (an EWMA over
    /// the sampled firings of every run executed on this pool through
    /// executors built by [`ExecutorPool::executor`]), or `None` before
    /// the first sample.
    pub fn sampled_firing_cost_ns(&self) -> Option<u64> {
        self.telemetry.sampled_firing_cost_ns()
    }

    /// Builds an executor whose firing-cost telemetry is shared with
    /// this pool, so granularity classification survives across
    /// executors (e.g. across the phases of a reconfigured pipeline).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::new`].
    pub fn executor<'g>(
        &self,
        graph: &'g TpdfGraph,
        config: RuntimeConfig,
    ) -> Result<Executor<'g>, RuntimeError> {
        Executor::with_telemetry(graph, config, Arc::clone(&self.telemetry))
    }

    /// Executes one run of `executor` on the persistent workers and
    /// reports [`Metrics`]. Semantically identical to
    /// [`Executor::run`] — placement, determinism and clock handling
    /// are the same shared worker loop — but no thread is spawned. The
    /// run engages `min(executor threads, pool size)` workers (the
    /// granularity heuristic may collapse that to 1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Executor::run`].
    pub fn run(
        &self,
        executor: &Executor<'_>,
        registry: &KernelRegistry,
    ) -> Result<Metrics, RuntimeError> {
        let engine = Arc::clone(executor.engine());
        let workers = engine.effective_workers().min(self.threads);
        let state = engine.initial_state(workers);
        let start = Instant::now();
        let virtual_clocks = matches!(
            engine.config().clock_mode,
            crate::executor::ClockMode::Virtual
        );
        if workers == 1 && virtual_clocks {
            // The collapsed single-worker fast path never touches the
            // pool: the calling thread runs the de-synchronised loop
            // directly, exactly as the scoped path does.
            engine.run_single(&state, registry, start);
            return engine.collect_metrics(&state, start.elapsed(), 1);
        }

        let job = Arc::new(RunJob {
            engine,
            registry: registry.clone(),
            state,
            start,
            workers,
        });
        let my_generation = {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            // Drain stragglers of an aborted previous generation before
            // re-arming the active count.
            while slot.active > 0 {
                slot = self.shared.done.wait(slot).expect("pool lock");
            }
            slot.job = Some(Arc::clone(&job));
            slot.generation += 1;
            slot.active = workers - 1;
            self.shared.work.notify_all();
            slot.generation
        };
        // The caller is worker 0 — same division of labour as the
        // scoped path, so a 1-worker pooled run involves no other
        // thread at all. A caller-side panic is caught so the halt can
        // be published and the secondaries drained (otherwise the next
        // submission would wait on them forever), then re-raised to
        // preserve the scoped path's panic semantics.
        let caller = catch_unwind(AssertUnwindSafe(|| {
            job.engine
                .worker_loop(&job.state, 0, &job.registry, job.start)
        }));
        if caller.is_err() {
            job.engine.fail(
                &job.state,
                RuntimeError::KernelFailed {
                    node: "pool worker 0".to_string(),
                    message: "worker thread panicked".to_string(),
                },
            );
        }
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            while slot.active > 0 {
                slot = self.shared.done.wait(slot).expect("pool lock");
            }
            // Generation-aware cleanup: with concurrent `run` callers
            // (the pool is `&self`), a second submitter may have
            // published a newer generation while this one drained —
            // nulling *its* job here would strand its workers. Only the
            // generation's owner clears the slot.
            if slot.generation == my_generation {
                slot.job = None;
            }
        }
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        job.engine
            .collect_metrics(&job.state, start.elapsed(), job.workers)
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool lock");
            slot.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The persistent secondary-worker loop: wait for a generation, run the
/// shared engine worker loop, report completion, repeat until shutdown.
fn pool_worker(shared: Arc<PoolShared>, me: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().expect("pool lock");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen {
                    seen = slot.generation;
                    // The job can already be gone: a worker that sat
                    // out generation N (index ≥ its worker count) may
                    // only wake after N's submitter cleared the slot.
                    // The generation is over — keep waiting for the
                    // next one instead of touching its active count.
                    if let Some(job) = slot.job.as_ref() {
                        break Arc::clone(job);
                    }
                }
                slot = shared.work.wait(slot).expect("pool lock");
            }
        };
        if me >= job.workers {
            // This generation engages fewer workers than the pool has;
            // sit it out (and do not touch its active count).
            continue;
        }
        // A panicking kernel must not wedge the pool: convert it into a
        // run error and still report completion, so the submitter's
        // wait terminates and later runs stay serviceable.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            job.engine
                .worker_loop(&job.state, me, &job.registry, job.start)
        }));
        if outcome.is_err() {
            job.engine.fail(
                &job.state,
                RuntimeError::KernelFailed {
                    node: format!("pool worker {me}"),
                    message: "worker thread panicked".to_string(),
                },
            );
        }
        drop(job);
        let mut slot = shared.slot.lock().expect("pool lock");
        slot.active -= 1;
        if slot.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::PlacementPolicy;
    use crate::token::Token;
    use tpdf_core::examples::figure2_graph;
    use tpdf_manycore::MappingStrategy;
    use tpdf_symexpr::Binding;

    fn binding(p: i64) -> Binding {
        Binding::from_pairs([("p", p)])
    }

    #[test]
    fn pooled_runs_match_scoped_runs() {
        let graph = figure2_graph();
        let registry = KernelRegistry::new();
        let pool = ExecutorPool::new(4);
        for placement in [
            PlacementPolicy::WorkStealing,
            PlacementPolicy::Affinity(MappingStrategy::RoundRobin),
        ] {
            let config = RuntimeConfig::new(binding(3))
                .with_threads(4)
                .with_iterations(3)
                .with_placement(placement);
            let scoped = Executor::new(&graph, config.clone())
                .unwrap()
                .run(&registry)
                .unwrap();
            let executor = pool.executor(&graph, config).unwrap();
            let pooled = pool.run(&executor, &registry).unwrap();
            assert_eq!(pooled.firings, scoped.firings, "{placement:?}");
            assert_eq!(pooled.tokens_pushed, scoped.tokens_pushed, "{placement:?}");
            assert_eq!(pooled.iterations, 3);
            assert_eq!(pooled.placement, placement);
            assert_eq!(
                pooled.worker_firings.iter().sum::<u64>(),
                pooled.firings.iter().sum::<u64>(),
                "per-worker firings must account for every firing"
            );
        }
    }

    #[test]
    fn pool_clamps_oversized_executor_thread_counts() {
        let graph = figure2_graph();
        let pool = ExecutorPool::new(2);
        let executor = pool
            .executor(&graph, RuntimeConfig::new(binding(2)).with_threads(8))
            .unwrap();
        let metrics = pool.run(&executor, &KernelRegistry::new()).unwrap();
        assert!(metrics.effective_workers <= 2);
        assert_eq!(metrics.worker_firings.len(), metrics.effective_workers);
    }

    /// Regression: a pool wider than a run's worker count leaves
    /// *sit-out* workers (index ≥ `job.workers`) racing the submitter's
    /// slot cleanup — a sitter waking after `slot.job` was cleared used
    /// to panic on the missing job and poison the pool mutex. Real-time
    /// mode keeps the multi-worker publish path (no granularity
    /// collapse), and many tiny back-to-back runs make the window hit.
    #[test]
    fn sit_out_workers_survive_rapid_generations() {
        let graph = figure2_graph();
        let pool = ExecutorPool::new(8);
        let registry = KernelRegistry::new();
        let config = RuntimeConfig::new(binding(1))
            .with_threads(2)
            .with_real_time(std::time::Duration::from_micros(1));
        let executor = pool.executor(&graph, config).unwrap();
        for _ in 0..500 {
            let metrics = pool.run(&executor, &registry).unwrap();
            assert_eq!(metrics.iterations, 1);
        }
    }

    #[test]
    fn pool_survives_a_panicking_kernel() {
        let graph = figure2_graph();
        let pool = ExecutorPool::new(2);
        let mut bad = KernelRegistry::new();
        bad.register_fn("B", |_| panic!("kernel bug"));
        // A panic on a secondary worker is converted into an error (a
        // panic on the caller propagates, which scoped runs do too).
        // Either way the pool must stay serviceable afterwards.
        let config = RuntimeConfig::new(binding(2)).with_threads(2);
        let executor = pool.executor(&graph, config).unwrap();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(&executor, &bad)));
        // `Err` means the caller-side worker hit the panic itself.
        if let Ok(result) = outcome {
            assert!(result.is_err(), "panicking kernel must fail the run");
        }
        let mut good = KernelRegistry::new();
        good.register_fn("B", |ctx| {
            ctx.fill_outputs_cycling(&[Token::Int(1)]);
            Ok(())
        });
        let metrics = pool.run(&executor, &good).unwrap();
        assert_eq!(metrics.iterations, 1);
    }
}

//! Core pinning of pool workers (`core-pinning` feature).
//!
//! `tpdf_manycore::Platform` models one processing element per worker;
//! [`crate::pool::ExecutorPool`] makes that model *physical* by pinning
//! each spawned worker thread to one CPU core, so the affinity
//! placement's "home worker" really is a home core and the NoC-latency
//! arguments of the mapping analysis carry over to the metal.
//!
//! Target cores are chosen from the thread's **allowed** CPU set
//! (`sched_getaffinity`), not from `0..available_parallelism`: in a
//! cpuset/taskset-restricted environment (a container pinned to cores
//! 2–3, say) the low core ids may not be usable at all, and worker `n`
//! must pin to the `n`-th *allowed* core instead.
//!
//! The implementation is raw `sched_{get,set}affinity` syscalls — the
//! offline build environment has no `libc` crate — compiled only on
//! Linux x86_64/aarch64 with the `core-pinning` feature enabled.
//! Everywhere else [`pin_to_nth_allowed_core`] is a no-op returning
//! `None`, and the pool records the unpinned outcome in
//! [`crate::metrics::Metrics::pinned_cores`].

// The syscall wrappers are this module's only unsafe (the crate denies
// unsafe_code elsewhere except the SPSC ring): they pass a pointer to a
// stack-owned, fixed-size CPU mask that the kernel reads (set) or
// writes within the given length (get).
#![cfg_attr(
    all(
        feature = "core-pinning",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ),
    allow(unsafe_code)
)]

/// Attempts to pin the calling thread to the `n`-th CPU core of its
/// currently *allowed* set (wrapping modulo the set size). Returns
/// `Some(core)` — the concrete core id — when the kernel accepted the
/// affinity mask, and `None` when pinning is unavailable (feature off,
/// non-Linux build, unsupported architecture) or a syscall failed.
pub(crate) fn pin_to_nth_allowed_core(n: usize) -> Option<usize> {
    let allowed = imp::allowed_cores();
    if allowed.is_empty() {
        return None;
    }
    let core = allowed[n % allowed.len()];
    imp::pin(core).then_some(core)
}

#[cfg(all(
    feature = "core-pinning",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    /// CPU mask wide enough for 1024 cores — far beyond the pool sizes
    /// this runtime targets; cores past the mask are simply not
    /// offered as pinning targets.
    const MASK_WORDS: usize = 16;

    /// The CPU ids the calling thread may run on, in ascending order
    /// (empty when the syscall fails — the caller then skips pinning).
    pub(super) fn allowed_cores() -> Vec<usize> {
        let mut mask = [0u64; MASK_WORDS];
        let ret =
            unsafe { sched_getaffinity_raw(0, core::mem::size_of_val(&mask), mask.as_mut_ptr()) };
        // On success the raw syscall returns the number of mask bytes
        // the kernel wrote (> 0); errors are negative.
        if ret <= 0 {
            return Vec::new();
        }
        let mut cores = Vec::new();
        for (word_idx, &word) in mask.iter().enumerate() {
            for bit in 0..64 {
                if word & (1u64 << bit) != 0 {
                    cores.push(word_idx * 64 + bit);
                }
            }
        }
        cores
    }

    pub(super) fn pin(core: usize) -> bool {
        if core >= MASK_WORDS * 64 {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[core / 64] |= 1 << (core % 64);
        // pid 0 = the calling thread. A zero return is success; any
        // error (EINVAL for an offline core, a seccomp filter) reports
        // as "not pinned" rather than failing the pool.
        let ret = unsafe { sched_setaffinity_raw(0, core::mem::size_of_val(&mask), mask.as_ptr()) };
        ret == 0
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sched_setaffinity_raw(pid: i64, len: usize, mask: *const u64) -> i64 {
        const NR_SCHED_SETAFFINITY: i64 = 203;
        let ret;
        core::arch::asm!(
            "syscall",
            inlateout("rax") NR_SCHED_SETAFFINITY => ret,
            in("rdi") pid,
            in("rsi") len,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sched_getaffinity_raw(pid: i64, len: usize, mask: *mut u64) -> i64 {
        const NR_SCHED_GETAFFINITY: i64 = 204;
        let ret;
        core::arch::asm!(
            "syscall",
            inlateout("rax") NR_SCHED_GETAFFINITY => ret,
            in("rdi") pid,
            in("rsi") len,
            in("rdx") mask,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sched_setaffinity_raw(pid: i64, len: usize, mask: *const u64) -> i64 {
        const NR_SCHED_SETAFFINITY: i64 = 122;
        let ret;
        core::arch::asm!(
            "svc 0",
            in("x8") NR_SCHED_SETAFFINITY,
            inlateout("x0") pid => ret,
            in("x1") len,
            in("x2") mask,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sched_getaffinity_raw(pid: i64, len: usize, mask: *mut u64) -> i64 {
        const NR_SCHED_GETAFFINITY: i64 = 123;
        let ret;
        core::arch::asm!(
            "svc 0",
            in("x8") NR_SCHED_GETAFFINITY,
            inlateout("x0") pid => ret,
            in("x1") len,
            in("x2") mask,
            options(nostack),
        );
        ret
    }
}

#[cfg(not(all(
    feature = "core-pinning",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    pub(super) fn allowed_cores() -> Vec<usize> {
        Vec::new()
    }

    pub(super) fn pin(_core: usize) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_gated_and_respects_the_allowed_set() {
        let enabled = cfg!(all(
            feature = "core-pinning",
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ));
        // Worker indices far beyond the core count wrap instead of
        // failing; without the feature everything is a clean no-op.
        // Pinning only narrows *this test thread's* mask (pid 0 =
        // calling thread), so later queries see the narrowed set and
        // other tests are unaffected.
        for n in [0usize, 1, 1 << 20] {
            if enabled {
                let allowed = imp::allowed_cores();
                assert!(
                    !allowed.is_empty(),
                    "a live thread always has an allowed set"
                );
                assert_eq!(pin_to_nth_allowed_core(n), Some(allowed[n % allowed.len()]));
            } else {
                assert_eq!(pin_to_nth_allowed_core(n), None);
            }
        }
    }
}

//! The paper's case studies ported to the runtime: edge detection
//! (Section IV-A / Figure 6), the cognitive-radio OFDM demodulator
//! (Section IV-B / Figure 7) and the FM-radio multi-band equalizer
//! (the StreamIt-style benchmark of Section IV-B), running on real
//! pixels and real samples.
//!
//! Each port pairs the TPDF graph from `tpdf-apps` with a
//! [`KernelRegistry`] of executable behaviours and returns an
//! [`OutputCapture`] handle from which the tokens that reached the sink
//! can be read back after the run — that is what the cross-validation
//! suite compares against the direct (graph-free) computation.

use crate::kernel::KernelRegistry;
use crate::token::{Token, TokenBytes};
use crate::RuntimeError;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tpdf_apps::dsp::{demap, fft, random_samples, remove_cyclic_prefix, Complex};
use tpdf_apps::edge_detection::{detector_node_name, EdgeDetectionApp, EdgeDetector};
use tpdf_apps::fm_radio::{FmRadio, FmRadioConfig};
use tpdf_apps::image::GrayImage;
use tpdf_apps::ofdm::{OfdmConfig, OfdmDemodulator};
use tpdf_core::control::{ModeSelector, TableTrace, ValueMapSelector, ValueTrace};
use tpdf_core::graph::TpdfGraph;
use tpdf_core::mode::Mode;
use tpdf_core::rate::RateSeq;

/// Collects every token a sink kernel consumed, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct OutputCapture {
    tokens: Arc<Mutex<Vec<Token>>>,
}

impl OutputCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the named node as a capturing sink in `registry`.
    pub fn install(&self, registry: &mut KernelRegistry, node: &str) {
        let tokens = Arc::clone(&self.tokens);
        registry.register_fn(node, move |ctx| {
            let consumed = ctx.concatenated_inputs();
            tokens
                .lock()
                .expect("capture lock")
                .extend(consumed.iter().cloned());
            // A sink may still have outputs in some graphs; forward.
            ctx.fill_outputs_cycling(&consumed);
            Ok(())
        });
    }

    /// Drains the capture: all tokens collected so far, in arrival
    /// order, moved out without copying. Subsequent reads see an empty
    /// capture.
    pub fn take_tokens(&self) -> Vec<Token> {
        std::mem::take(&mut *self.tokens.lock().expect("capture lock"))
    }

    /// Clones the captured-but-untaken tokens without draining them —
    /// what a checkpoint stores in [`crate::Checkpoint::captured`] so
    /// the capture's state survives executor teardown: restore with
    /// [`OutputCapture::restore_tokens`], and a later
    /// [`OutputCapture::take_tokens`] equals the uninterrupted capture.
    pub fn snapshot_tokens(&self) -> Vec<Token> {
        self.tokens.lock().expect("capture lock").clone()
    }

    /// Replaces the capture's contents with a checkpointed snapshot
    /// (the tokens captured before the teardown), so tokens captured
    /// after the restore extend the original stream seamlessly.
    pub fn restore_tokens(&self, tokens: Vec<Token>) {
        *self.tokens.lock().expect("capture lock") = tokens;
    }

    /// Tokens captured so far.
    pub fn len(&self) -> usize {
        self.tokens.lock().expect("capture lock").len()
    }

    /// Whether nothing has been captured (yet).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs a read-only view over the captured tokens under the lock —
    /// the typed accessors below project through this instead of
    /// cloning the whole stream, and none of them drain, so repeated
    /// reads agree.
    fn read<R>(&self, project: impl FnOnce(&[Token]) -> R) -> R {
        project(&self.tokens.lock().expect("capture lock"))
    }

    /// The captured tokens interpreted as a bit stream (non-byte tokens
    /// are skipped).
    pub fn bits(&self) -> Vec<u8> {
        self.read(|tokens| tokens.iter().filter_map(Token::as_byte).collect())
    }

    /// The captured tokens interpreted as images.
    pub fn images(&self) -> Vec<GrayImage> {
        self.read(|tokens| {
            tokens
                .iter()
                .filter_map(|t| t.as_image().cloned())
                .collect()
        })
    }

    /// The captured tokens interpreted as an audio stream (non-float
    /// tokens are skipped).
    pub fn floats(&self) -> Vec<f64> {
        self.read(|tokens| tokens.iter().filter_map(Token::as_float).collect())
    }

    /// The captured tokens flattened to one byte stream: `Byte` tokens
    /// contribute themselves, [`crate::token::TokenBytes`] blocks their
    /// whole payload — so a scalar-per-byte pipeline and a
    /// block-handle pipeline carrying the same data compare equal.
    pub fn byte_stream(&self) -> Vec<u8> {
        self.read(|tokens| {
            let mut bytes = Vec::new();
            for token in tokens {
                match token {
                    Token::Byte(b) => bytes.push(*b),
                    Token::Block(block) => bytes.extend_from_slice(block.as_slice()),
                    _ => {}
                }
            }
            bytes
        })
    }
}

/// The edge-detection application bound to a concrete input image.
#[derive(Debug, Clone)]
pub struct EdgeDetectionRuntime {
    app: EdgeDetectionApp,
    image: GrayImage,
}

impl EdgeDetectionRuntime {
    /// Creates the port for the given application parameters and input
    /// image.
    pub fn new(app: EdgeDetectionApp, image: GrayImage) -> Self {
        EdgeDetectionRuntime { app, image }
    }

    /// The Figure 6 TPDF graph.
    pub fn graph(&self) -> TpdfGraph {
        self.app.graph()
    }

    /// The application parameters.
    pub fn app(&self) -> &EdgeDetectionApp {
        &self.app
    }

    /// Builds the kernel registry: `IRead` emits the input image, each
    /// detector kernel runs its real detector, `IWrite` captures the
    /// result selected by the Transaction kernel.
    ///
    /// With `simulated_times = Some(unit)` every detector additionally
    /// sleeps its configured execution time (in units of `unit`) before
    /// computing, reproducing the paper's Figure 6 timing profile in
    /// real time — that is what makes the Clock's 500-unit deadline
    /// select Sobel rather than the slower, better Prewitt/Canny.
    pub fn registry(&self, simulated_times: Option<Duration>) -> (KernelRegistry, OutputCapture) {
        let mut registry = KernelRegistry::new();

        let image = self.image.clone();
        registry.register_fn("IRead", move |ctx| {
            let token = Token::image(image.clone());
            ctx.fill_outputs_cycling(std::slice::from_ref(&token));
            Ok(())
        });

        for detector in EdgeDetector::ALL {
            let delay = simulated_times.map(|unit| unit * self.app.execution_time(detector) as u32);
            registry.register_fn(detector_node_name(detector), move |ctx| {
                if let Some(delay) = delay {
                    std::thread::sleep(delay);
                }
                let input = ctx
                    .inputs
                    .first()
                    .and_then(|p| p.tokens.first())
                    .and_then(Token::as_image)
                    .ok_or_else(|| RuntimeError::KernelFailed {
                        node: ctx.node.to_string(),
                        message: "expected an image token".to_string(),
                    })?;
                let edges = Token::image(detector.run(input));
                ctx.fill_outputs_cycling(std::slice::from_ref(&edges));
                Ok(())
            });
        }

        let capture = OutputCapture::new();
        capture.install(&mut registry, "IWrite");
        (registry, capture)
    }

    /// The edge map the graph-free reference computation produces for
    /// `detector` on the bound image.
    pub fn reference_edges(&self, detector: EdgeDetector) -> GrayImage {
        detector.run(&self.image)
    }
}

/// The OFDM demodulator bound to a concrete generated symbol stream.
#[derive(Debug, Clone)]
pub struct OfdmRuntime {
    demod: OfdmDemodulator,
    symbols: Vec<Vec<Complex>>,
    sent_bits: Vec<u8>,
}

impl OfdmRuntime {
    /// Creates the port: generates `β` OFDM symbols (and the payload
    /// bits they encode) with the transmitter-side model.
    pub fn new(config: OfdmConfig, seed: u64) -> Self {
        let demod = OfdmDemodulator::new(config);
        let (symbols, sent_bits) = demod.generate_symbols(seed);
        OfdmRuntime {
            demod,
            symbols,
            sent_bits,
        }
    }

    /// The Figure 7 TPDF graph.
    pub fn graph(&self) -> TpdfGraph {
        self.demod.tpdf_graph()
    }

    /// The demodulator configuration.
    pub fn config(&self) -> &OfdmConfig {
        self.demod.config()
    }

    /// The payload bits encoded in the generated symbols.
    pub fn sent_bits(&self) -> &[u8] {
        &self.sent_bits
    }

    /// The flattened time-domain sample stream `SRC` replays each
    /// iteration — exactly what a wire-fed source must be sent per
    /// run to match the solo execution byte for byte.
    pub fn samples(&self) -> Vec<Token> {
        self.symbols
            .iter()
            .flat_map(|symbol| symbol.iter().map(|&c| Token::Complex(c)))
            .collect()
    }

    /// The bit stream the graph-free reference demodulation produces
    /// (`RCP → FFT → demap` applied directly).
    pub fn reference_bits(&self) -> Vec<u8> {
        self.demod.demodulate(&self.symbols)
    }

    /// Builds the kernel registry implementing Figure 7 on real samples:
    /// `SRC` replays the generated symbols, `RCP` strips cyclic
    /// prefixes, `FFT` transforms each symbol, `QPSK`/`QAM` demap, and
    /// the Transaction forwards the constellation selected by the
    /// control token to the capturing `SNK`.
    pub fn registry(&self) -> (KernelRegistry, OutputCapture) {
        let mut registry = KernelRegistry::new();
        let config = *self.demod.config();
        let n = config.symbol_len;
        let cp = config.cyclic_prefix;
        let m = config.bits_per_symbol;

        let samples: Vec<Token> = self
            .symbols
            .iter()
            .flat_map(|symbol| symbol.iter().map(|&c| Token::Complex(c)))
            .collect();
        registry.register_fn("SRC", move |ctx| {
            // Port 0: the β(N+L) time-domain samples; port 1: the active
            // constellation (M) towards the control actor.
            for out in &mut ctx.outputs {
                out.tokens = match out.port {
                    0 => samples.iter().take(out.rate as usize).cloned().collect(),
                    _ => vec![Token::Int(m as i64); out.rate as usize],
                };
            }
            Ok(())
        });

        registry.register_fn("RCP", move |ctx| {
            let samples = complex_inputs(ctx)?;
            let trimmed: Vec<Token> = samples
                .chunks(n + cp)
                .flat_map(|symbol| remove_cyclic_prefix(symbol, cp))
                .map(Token::Complex)
                .collect();
            ctx.fill_outputs_cycling(&trimmed);
            Ok(())
        });

        registry.register_fn("FFT", move |ctx| {
            let samples = complex_inputs(ctx)?;
            let spectrum: Vec<Token> = samples
                .chunks(n)
                .flat_map(fft)
                .map(Token::Complex)
                .collect();
            ctx.fill_outputs_cycling(&spectrum);
            Ok(())
        });

        registry.register_fn("QPSK", move |ctx| {
            let spectrum = complex_inputs(ctx)?;
            let bits: Vec<Token> = demap(&spectrum, 2).into_iter().map(Token::Byte).collect();
            ctx.fill_outputs_cycling(&bits);
            Ok(())
        });

        registry.register_fn("QAM", move |ctx| {
            let spectrum = complex_inputs(ctx)?;
            let bits: Vec<Token> = demap(&spectrum, 4).into_iter().map(Token::Byte).collect();
            ctx.fill_outputs_cycling(&bits);
            Ok(())
        });

        let capture = OutputCapture::new();
        capture.install(&mut registry, "SNK");
        (registry, capture)
    }

    /// The data-input port of `TRAN` matching the configured
    /// constellation (0 = QPSK, 1 = QAM), i.e. the `SelectInput` policy
    /// choice that makes the runtime demodulate correctly.
    pub fn matching_port(&self) -> usize {
        if self.demod.config().bits_per_symbol == 4 {
            1
        } else {
            0
        }
    }

    /// The data-dependent mode selector of Figure 7's `CON`: the
    /// control actor reads the constellation size `M` out of the tokens
    /// `SRC` sends it and steers `TRAN` to the matching demap path
    /// (`M = 2` → the QPSK input, `M = 4` → the QAM input). No scripted
    /// `ControlPolicy` is involved — the graph reacts to its own
    /// stream, which is the paper's context dependence.
    pub fn mode_selector(&self) -> Arc<dyn ModeSelector> {
        Arc::new(ValueMapSelector::new(
            [(2, Mode::SelectOne(0)), (4, Mode::SelectOne(1))],
            Mode::WaitAll,
        ))
    }

    /// The value trace the count-level simulation (cross-validation and
    /// the executor's sizing reference) uses for `CON`'s input: `SRC`
    /// emits its configured `M` on every token of the `SRC → CON`
    /// channel, exactly as the registered `SRC` behaviour does with
    /// real tokens.
    pub fn value_trace(&self) -> Arc<dyn ValueTrace> {
        let graph = self.graph();
        let src = graph.node_by_name("SRC").expect("Figure 7 has SRC");
        let con = graph.node_by_name("CON").expect("Figure 7 has CON");
        let label = graph
            .channels()
            .find(|(_, c)| c.source == src && c.target == con)
            .map(|(_, c)| c.label.clone())
            .expect("SRC feeds CON");
        let m = self.demod.config().bits_per_symbol as i64;
        TableTrace::new([(label, vec![m])]).shared()
    }
}

/// The FM-radio multi-band equalizer bound to a concrete generated RF
/// block.
///
/// This is the third cross-validation target: unlike edge detection
/// and OFDM (whose Transactions select between *different algorithms*
/// computing comparable results), the FM radio's control actor steers a
/// wide Select-Duplicate fan-out — one channel per equalizer band — of
/// which a mode typically enables a small subset. Its rejected band
/// channels exercise the iteration-boundary flush rule on many
/// channels at once.
#[derive(Debug, Clone)]
pub struct FmRadioRuntime {
    radio: FmRadio,
    samples: Vec<Complex>,
}

impl FmRadioRuntime {
    /// Taps of the complex low-pass front-end filter.
    const LOWPASS_TAPS: usize = 4;

    /// Creates the port: generates one deterministic block of baseband
    /// samples which the source replays on every firing.
    pub fn new(config: FmRadioConfig, seed: u64) -> Self {
        let samples = random_samples(config.block, seed);
        FmRadioRuntime {
            radio: FmRadio::new(config),
            samples,
        }
    }

    /// The TPDF graph (`src → lowpass → demod → dup → band_i → sum →
    /// sink` with a control actor steering `sum`).
    pub fn graph(&self) -> TpdfGraph {
        self.radio.tpdf_graph()
    }

    /// The benchmark configuration.
    pub fn config(&self) -> &FmRadioConfig {
        self.radio.config()
    }

    /// The parameter binding of the graph (`B` = block size).
    pub fn binding(&self) -> tpdf_symexpr::Binding {
        self.radio.binding()
    }

    /// The per-band gain of the equalizer (a fixed, deterministic
    /// profile: band `i` is scaled by `0.5 + i/4`).
    fn band_gain(band: usize) -> f64 {
        0.5 + band as f64 * 0.25
    }

    /// The graph-free reference computation of band `band`: low-pass,
    /// FM-demodulate, then apply the band's gain and smoothing.
    pub fn reference_audio(&self, band: usize) -> Vec<f64> {
        let demodulated = FmRadio::fm_demodulate(&Self::lowpass_block(&self.samples));
        Self::band_transform(band, &demodulated)
    }

    /// The band selected by the built-in Transaction under `WaitAll`:
    /// the highest-priority input, i.e. the last band.
    pub fn waitall_band(&self) -> usize {
        self.radio.config().bands - 1
    }

    fn lowpass_block(samples: &[Complex]) -> Vec<Complex> {
        let res: Vec<f64> = samples.iter().map(|c| c.re).collect();
        let ims: Vec<f64> = samples.iter().map(|c| c.im).collect();
        let res = FmRadio::low_pass(&res, Self::LOWPASS_TAPS);
        let ims = FmRadio::low_pass(&ims, Self::LOWPASS_TAPS);
        res.into_iter()
            .zip(ims)
            .map(|(re, im)| Complex::new(re, im))
            .collect()
    }

    fn band_transform(band: usize, audio: &[f64]) -> Vec<f64> {
        let gain = Self::band_gain(band);
        FmRadio::low_pass(audio, band + 2)
            .into_iter()
            .map(|x| x * gain)
            .collect()
    }

    /// Builds the kernel registry implementing the pipeline on real
    /// samples: `src` replays the RF block (and feeds the profile
    /// control actor), `lowpass` filters, `demod` FM-demodulates, the
    /// built-in Select-Duplicate fans the audio out to every band
    /// kernel, and the built-in Transaction (`sum`) forwards the band
    /// selected by the control token to the capturing `sink`.
    pub fn registry(&self) -> (KernelRegistry, OutputCapture) {
        let mut registry = KernelRegistry::new();

        let samples: Vec<Token> = self.samples.iter().map(|&c| Token::Complex(c)).collect();
        registry.register_fn("src", move |ctx| {
            // Port 0: the B baseband samples; port 1: a profile marker
            // towards the control actor.
            for out in &mut ctx.outputs {
                match out.port {
                    0 => out.write_cycled(&samples),
                    _ => out.write_cycled(&[Token::Int(1)]),
                }
            }
            Ok(())
        });

        registry.register_fn("lowpass", move |ctx| {
            let filtered: Vec<Token> = Self::lowpass_block(&complex_inputs(ctx)?)
                .into_iter()
                .map(Token::Complex)
                .collect();
            ctx.fill_outputs_cycling(&filtered);
            Ok(())
        });

        registry.register_fn("demod", move |ctx| {
            let audio: Vec<Token> = FmRadio::fm_demodulate(&complex_inputs(ctx)?)
                .into_iter()
                .map(Token::Float)
                .collect();
            ctx.fill_outputs_cycling(&audio);
            Ok(())
        });

        for band in 0..self.radio.config().bands {
            registry.register_fn(format!("band{band}"), move |ctx| {
                let audio = float_inputs(ctx)?;
                let shaped: Vec<Token> = Self::band_transform(band, &audio)
                    .into_iter()
                    .map(Token::Float)
                    .collect();
                ctx.fill_outputs_cycling(&shaped);
                Ok(())
            });
        }

        let capture = OutputCapture::new();
        capture.install(&mut registry, "sink");
        (registry, capture)
    }
}

/// How a [`PayloadRuntime`] pipeline encodes its bytes as tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadEncoding {
    /// One `Token::Byte` per payload byte — every hop copies the whole
    /// payload token by token (the clone baseline).
    Scalar,
    /// One refcounted [`TokenBytes`] block per row — hops move a
    /// handle, the payload bytes are never copied.
    Block,
}

/// A large-payload pipeline (`SRC → RELAY → SNK`) moving the same
/// bytes either as per-byte scalar tokens or as refcounted
/// [`TokenBytes`] row handles — the runtime's demonstration (and
/// benchmark substrate) for zero-copy payload movement, standing in
/// for the case studies' image rows and OFDM symbol blocks.
///
/// Both encodings carry an identical byte stream to the sink
/// ([`OutputCapture::byte_stream`] compares them directly); only the
/// token count per firing differs, so the graphs are rebuilt per
/// encoding with matching rates.
#[derive(Debug, Clone)]
pub struct PayloadRuntime {
    rows: usize,
    row_bytes: usize,
    payload: Vec<u8>,
    row_blocks: Vec<TokenBytes>,
}

impl PayloadRuntime {
    /// Creates the pipeline state: `rows` rows of `row_bytes`
    /// deterministic pseudo-random bytes each.
    pub fn new(rows: usize, row_bytes: usize, seed: u64) -> Self {
        let mut state = seed | 1;
        let payload: Vec<u8> = (0..rows * row_bytes)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let row_blocks = payload.chunks(row_bytes).map(TokenBytes::from).collect();
        PayloadRuntime {
            rows,
            row_bytes,
            payload,
            row_blocks,
        }
    }

    /// The payload bytes one iteration delivers to the sink.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The per-row block handles the `Block` source emits; every
    /// captured block must [share storage](TokenBytes::shares_storage)
    /// with one of these for the run to have been zero-copy.
    pub fn row_blocks(&self) -> &[TokenBytes] {
        &self.row_blocks
    }

    fn tokens_per_firing(&self, encoding: PayloadEncoding) -> u64 {
        match encoding {
            PayloadEncoding::Scalar => (self.rows * self.row_bytes) as u64,
            PayloadEncoding::Block => self.rows as u64,
        }
    }

    /// The three-stage pipeline graph for the given encoding (rates are
    /// the encoding's tokens per firing; the repetition vector is all
    /// ones).
    pub fn graph(&self, encoding: PayloadEncoding) -> TpdfGraph {
        let rate = self.tokens_per_firing(encoding);
        TpdfGraph::builder()
            .kernel("SRC")
            .kernel("RELAY")
            .kernel("SNK")
            .channel(
                "SRC",
                "RELAY",
                RateSeq::constant(rate),
                RateSeq::constant(rate),
                0,
            )
            .channel(
                "RELAY",
                "SNK",
                RateSeq::constant(rate),
                RateSeq::constant(rate),
                0,
            )
            .build()
            .expect("payload pipeline is well-formed")
    }

    /// Builds the kernel registry for the given encoding: `SRC` replays
    /// the payload (as bytes or as row handles), `RELAY` forwards, and
    /// the capturing `SNK` collects what arrives.
    pub fn registry(&self, encoding: PayloadEncoding) -> (KernelRegistry, OutputCapture) {
        let mut registry = KernelRegistry::new();
        let tokens: Vec<Token> = match encoding {
            PayloadEncoding::Scalar => self.payload.iter().map(|&b| Token::Byte(b)).collect(),
            PayloadEncoding::Block => self.row_blocks.iter().cloned().map(Token::Block).collect(),
        };
        registry.register_fn("SRC", move |ctx| {
            ctx.fill_outputs_cycling(&tokens);
            Ok(())
        });
        registry.register_fn("RELAY", move |ctx| {
            let consumed = ctx.concatenated_inputs();
            ctx.fill_outputs_cycling(&consumed);
            Ok(())
        });
        let capture = OutputCapture::new();
        capture.install(&mut registry, "SNK");
        (registry, capture)
    }
}

/// The complex payloads of every consumed token, in order.
fn complex_inputs(ctx: &crate::kernel::FiringContext) -> Result<Vec<Complex>, RuntimeError> {
    ctx.concatenated_inputs()
        .iter()
        .map(|t| {
            t.as_complex().ok_or_else(|| RuntimeError::KernelFailed {
                node: ctx.node.to_string(),
                message: format!("expected a complex sample, got {t}"),
            })
        })
        .collect()
}

/// The float payloads of every consumed token, in order.
fn float_inputs(ctx: &crate::kernel::FiringContext) -> Result<Vec<f64>, RuntimeError> {
    ctx.concatenated_inputs()
        .iter()
        .map(|t| {
            t.as_float().ok_or_else(|| RuntimeError::KernelFailed {
                node: ctx.node.to_string(),
                message: format!("expected an audio sample, got {t}"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, PlacementPolicy, RuntimeConfig};
    use crate::pool::ExecutorPool;
    use tpdf_manycore::MappingStrategy;
    use tpdf_sim::engine::ControlPolicy;
    use tpdf_symexpr::Binding;

    /// Both placement policies, for the case-study matrix below.
    fn placements() -> [PlacementPolicy; 2] {
        [
            PlacementPolicy::WorkStealing,
            PlacementPolicy::Affinity(MappingStrategy::LoadBalanced),
        ]
    }

    #[test]
    fn edge_detection_runs_real_pixels_on_four_threads() {
        let port =
            EdgeDetectionRuntime::new(EdgeDetectionApp::default(), GrayImage::synthetic(48, 48, 9));
        let graph = port.graph();
        let (registry, capture) = port.registry(None);
        // WaitAll: the Transaction sees all four detectors and forwards
        // the highest-priority (Canny) result.
        let config = RuntimeConfig::new(Binding::new())
            .with_threads(4)
            .with_iterations(2);
        let metrics = Executor::new(&graph, config)
            .unwrap()
            .run(&registry)
            .unwrap();
        assert_eq!(metrics.iterations, 2);
        let images = capture.images();
        assert_eq!(images.len(), 2);
        let expected = port.reference_edges(EdgeDetector::Canny);
        assert_eq!(images[0], expected);
        assert_eq!(images[1], expected);
    }

    #[test]
    fn edge_detection_select_input_forwards_that_detector() {
        let port =
            EdgeDetectionRuntime::new(EdgeDetectionApp::default(), GrayImage::synthetic(40, 40, 4));
        let graph = port.graph();
        for (input, detector) in EdgeDetector::ALL.iter().enumerate() {
            let (registry, capture) = port.registry(None);
            let config = RuntimeConfig::new(Binding::new())
                .with_threads(4)
                .with_policy(ControlPolicy::SelectInput(input));
            Executor::new(&graph, config)
                .unwrap()
                .run(&registry)
                .unwrap();
            assert_eq!(capture.images(), vec![port.reference_edges(*detector)]);
        }
    }

    #[test]
    fn ofdm_qpsk_demodulates_error_free_on_four_threads() {
        let config = OfdmConfig {
            symbol_len: 32,
            cyclic_prefix: 2,
            bits_per_symbol: 2,
            vectorization: 3,
        };
        let port = OfdmRuntime::new(config, 77);
        let graph = port.graph();
        let (registry, capture) = port.registry();
        // CON derives the constellation from SRC's data — no scripted
        // ControlPolicy.
        let run_config = RuntimeConfig::new(port.config().binding())
            .with_threads(4)
            .with_mode_selector(port.mode_selector())
            .with_value_trace(port.value_trace());
        let metrics = Executor::new(&graph, run_config)
            .unwrap()
            .run(&registry)
            .unwrap();
        assert_eq!(metrics.iterations, 1);
        assert_eq!(capture.bits(), port.reference_bits());
        assert_eq!(capture.bits(), port.sent_bits());
        let con = graph.node_by_name("CON").unwrap();
        assert_eq!(
            metrics.mode_sequences[con.0],
            vec![Mode::SelectOne(port.matching_port())]
        );
    }

    #[test]
    fn fm_radio_selects_the_band_of_the_control_mode() {
        let port = FmRadioRuntime::new(
            FmRadioConfig {
                bands: 4,
                block: 16,
            },
            11,
        );
        let graph = port.graph();
        for band in 0..port.config().bands {
            let (registry, capture) = port.registry();
            let config = RuntimeConfig::new(port.binding())
                .with_threads(4)
                .with_policy(ControlPolicy::SelectInput(band));
            Executor::new(&graph, config)
                .unwrap()
                .run(&registry)
                .unwrap();
            assert_eq!(capture.floats(), port.reference_audio(band), "band {band}");
        }
    }

    #[test]
    fn fm_radio_waitall_forwards_highest_priority_band() {
        let port = FmRadioRuntime::new(FmRadioConfig { bands: 3, block: 8 }, 7);
        let graph = port.graph();
        let (registry, capture) = port.registry();
        let config = RuntimeConfig::new(port.binding())
            .with_threads(2)
            .with_iterations(2);
        let metrics = Executor::new(&graph, config)
            .unwrap()
            .run(&registry)
            .unwrap();
        assert_eq!(metrics.iterations, 2);
        let expected = port.reference_audio(port.waitall_band());
        let audio = capture.floats();
        assert_eq!(audio.len(), expected.len() * 2);
        assert_eq!(&audio[..expected.len()], expected.as_slice());
        assert_eq!(&audio[expected.len()..], expected.as_slice());
    }

    /// All three case studies, both placement policies, on a shared
    /// persistent pool: affinity placement (driven by the manycore
    /// mapper) must reproduce the exact same pixels, bits and audio as
    /// work stealing — placement changes the schedule, never the
    /// result.
    #[test]
    fn case_studies_agree_under_both_placements() {
        let pool = ExecutorPool::new(4);

        // Edge detection: identical edge maps.
        let edge =
            EdgeDetectionRuntime::new(EdgeDetectionApp::default(), GrayImage::synthetic(32, 32, 5));
        let edge_graph = edge.graph();
        for placement in placements() {
            let (registry, capture) = edge.registry(None);
            let config = RuntimeConfig::new(Binding::new())
                .with_threads(4)
                .with_placement(placement);
            let executor = pool.executor(&edge_graph, config).unwrap();
            let metrics = pool.run(&executor, &registry).unwrap();
            assert_eq!(metrics.placement, placement);
            assert_eq!(
                capture.images(),
                vec![edge.reference_edges(EdgeDetector::Canny)],
                "edge detection under {placement:?}"
            );
        }

        // OFDM: identical (error-free) bit streams, identical modes.
        let ofdm = OfdmRuntime::new(
            OfdmConfig {
                symbol_len: 16,
                cyclic_prefix: 2,
                bits_per_symbol: 2,
                vectorization: 2,
            },
            31,
        );
        let ofdm_graph = ofdm.graph();
        for placement in placements() {
            let (registry, capture) = ofdm.registry();
            let config = RuntimeConfig::new(ofdm.config().binding())
                .with_threads(4)
                .with_placement(placement)
                .with_mode_selector(ofdm.mode_selector())
                .with_value_trace(ofdm.value_trace());
            let executor = pool.executor(&ofdm_graph, config).unwrap();
            pool.run(&executor, &registry).unwrap();
            assert_eq!(capture.bits(), ofdm.sent_bits(), "OFDM under {placement:?}");
        }

        // FM radio: identical audio per selected band.
        let radio = FmRadioRuntime::new(FmRadioConfig { bands: 3, block: 8 }, 3);
        let radio_graph = radio.graph();
        for placement in placements() {
            let (registry, capture) = radio.registry();
            let config = RuntimeConfig::new(radio.binding())
                .with_threads(4)
                .with_placement(placement)
                .with_policy(ControlPolicy::SelectInput(1));
            let executor = pool.executor(&radio_graph, config).unwrap();
            pool.run(&executor, &registry).unwrap();
            assert_eq!(
                capture.floats(),
                radio.reference_audio(1),
                "FM radio under {placement:?}"
            );
        }
    }

    #[test]
    fn payload_encodings_deliver_identical_byte_streams() {
        let port = PayloadRuntime::new(8, 64, 42);
        let mut streams = Vec::new();
        for encoding in [PayloadEncoding::Scalar, PayloadEncoding::Block] {
            let graph = port.graph(encoding);
            let (registry, capture) = port.registry(encoding);
            let config = RuntimeConfig::new(Binding::new())
                .with_threads(2)
                .with_iterations(2);
            let metrics = Executor::new(&graph, config)
                .unwrap()
                .run(&registry)
                .unwrap();
            assert_eq!(metrics.iterations, 2, "{encoding:?}");
            streams.push(capture.byte_stream());
        }
        let expected: Vec<u8> = port
            .payload()
            .iter()
            .chain(port.payload())
            .copied()
            .collect();
        assert_eq!(streams[0], expected, "scalar stream");
        assert_eq!(streams[0], streams[1], "encodings must agree byte-for-byte");
    }

    #[test]
    fn payload_blocks_arrive_without_copying_the_bytes() {
        let port = PayloadRuntime::new(4, 128, 9);
        let graph = port.graph(PayloadEncoding::Block);
        let (registry, capture) = port.registry(PayloadEncoding::Block);
        let config = RuntimeConfig::new(Binding::new()).with_threads(1);
        Executor::new(&graph, config)
            .unwrap()
            .run(&registry)
            .unwrap();
        let tokens = capture.take_tokens();
        assert_eq!(tokens.len(), 4);
        for (row, token) in tokens.iter().enumerate() {
            let block = token.as_block().expect("block token");
            assert!(
                block.shares_storage(&port.row_blocks()[row]),
                "row {row} was copied somewhere between SRC and SNK"
            );
        }
    }

    #[test]
    fn ofdm_qam_demodulates_error_free() {
        let config = OfdmConfig {
            symbol_len: 16,
            cyclic_prefix: 1,
            bits_per_symbol: 4,
            vectorization: 2,
        };
        let port = OfdmRuntime::new(config, 5);
        let graph = port.graph();
        let (registry, capture) = port.registry();
        let run_config = RuntimeConfig::new(port.config().binding())
            .with_threads(4)
            .with_mode_selector(port.mode_selector())
            .with_value_trace(port.value_trace());
        let metrics = Executor::new(&graph, run_config)
            .unwrap()
            .run(&registry)
            .unwrap();
        assert_eq!(capture.bits(), port.sent_bits());
        let con = graph.node_by_name("CON").unwrap();
        assert_eq!(metrics.mode_sequences[con.0], vec![Mode::SelectOne(1)]);
    }
}

//! Run-time token values flowing through the channels of a TPDF graph.
//!
//! The `tpdf-sim` engines only count tokens; this runtime moves real
//! values. [`Token`] is the closed set of payloads the ported case
//! studies need: unit markers for rate-only actors, scalars, demodulated
//! bits, complex samples (OFDM) and shared images (edge detection).
//! Images are reference-counted so duplicating one through a
//! Select-Duplicate kernel costs a pointer, not a copy.

use std::fmt;
use std::sync::Arc;
use tpdf_apps::dsp::Complex;
use tpdf_apps::image::GrayImage;

/// One data token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A pure rate marker carrying no payload (what the untimed
    /// simulator's counted tokens correspond to).
    Unit,
    /// A signed integer.
    Int(i64),
    /// A floating-point scalar.
    Float(f64),
    /// One (demodulated) bit or byte.
    Byte(u8),
    /// A complex baseband sample.
    Complex(Complex),
    /// A shared grayscale image (edge-detection case study).
    Image(Arc<GrayImage>),
}

impl Token {
    /// Wraps an image into a shared token.
    pub fn image(image: GrayImage) -> Self {
        Token::Image(Arc::new(image))
    }

    /// The image payload, if this token carries one.
    pub fn as_image(&self) -> Option<&GrayImage> {
        match self {
            Token::Image(img) => Some(img),
            _ => None,
        }
    }

    /// The complex payload, if this token carries one.
    pub fn as_complex(&self) -> Option<Complex> {
        match self {
            Token::Complex(c) => Some(*c),
            _ => None,
        }
    }

    /// The byte payload, if this token carries one.
    pub fn as_byte(&self) -> Option<u8> {
        match self {
            Token::Byte(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this token carries one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Token::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The floating-point payload, if this token carries one (used by
    /// the FM-radio audio stream).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Token::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The scalar view of this token — what a data-dependent
    /// [`tpdf_core::control::ModeSelector`] sees when a control actor
    /// consumes it. Payload-free and non-numeric tokens ([`Token::Unit`],
    /// [`Token::Image`]) view as 0; floats truncate; complex samples
    /// view as their truncated real part.
    pub fn as_scalar(&self) -> i64 {
        match self {
            Token::Unit | Token::Image(_) => 0,
            Token::Int(i) => *i,
            Token::Float(x) => *x as i64,
            Token::Byte(b) => *b as i64,
            Token::Complex(c) => c.re as i64,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Unit => write!(f, "·"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Byte(b) => write!(f, "{b}"),
            Token::Complex(c) => write!(f, "{}+{}i", c.re, c.im),
            Token::Image(img) => write!(f, "image({}x{})", img.width(), img.height()),
        }
    }
}

impl From<u8> for Token {
    fn from(b: u8) -> Self {
        Token::Byte(b)
    }
}

impl From<i64> for Token {
    fn from(i: i64) -> Self {
        Token::Int(i)
    }
}

impl From<f64> for Token {
    fn from(x: f64) -> Self {
        Token::Float(x)
    }
}

impl From<Complex> for Token {
    fn from(c: Complex) -> Self {
        Token::Complex(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Token::from(3u8).as_byte(), Some(3));
        assert_eq!(Token::from(-2i64).as_int(), Some(-2));
        assert_eq!(Token::from(1.5f64).as_float(), Some(1.5));
        assert_eq!(Token::Unit.as_byte(), None);
        assert_eq!(Token::Unit.as_float(), None);
        let c = Complex::new(1.0, -1.0);
        assert_eq!(Token::from(c).as_complex(), Some(c));
        let img = GrayImage::synthetic(4, 4, 1);
        let t = Token::image(img.clone());
        assert_eq!(t.as_image(), Some(&img));
        assert_eq!(t.as_complex(), None);
    }

    #[test]
    fn scalar_views_cover_every_variant() {
        assert_eq!(Token::Unit.as_scalar(), 0);
        assert_eq!(Token::Int(-7).as_scalar(), -7);
        assert_eq!(Token::Byte(3).as_scalar(), 3);
        assert_eq!(Token::Float(2.9).as_scalar(), 2);
        assert_eq!(Token::Complex(Complex::new(4.2, 9.0)).as_scalar(), 4);
        assert_eq!(Token::image(GrayImage::new(1, 1)).as_scalar(), 0);
    }

    #[test]
    fn image_tokens_share_storage() {
        let img = Arc::new(GrayImage::synthetic(8, 8, 2));
        let a = Token::Image(Arc::clone(&img));
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&img), 3);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Token::Unit.to_string(), "·");
        assert_eq!(Token::Byte(1).to_string(), "1");
        assert!(Token::image(GrayImage::new(2, 3))
            .to_string()
            .contains("2x3"));
    }
}

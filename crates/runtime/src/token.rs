//! Run-time token values flowing through the channels of a TPDF graph.
//!
//! The `tpdf-sim` engines only count tokens; this runtime moves real
//! values. [`Token`] is the closed set of payloads the ported case
//! studies need: unit markers for rate-only actors, scalars, demodulated
//! bits, complex samples (OFDM) and shared images (edge detection).
//! Images are reference-counted so duplicating one through a
//! Select-Duplicate kernel costs a pointer, not a copy.
//!
//! Large contiguous payloads — an edge-detection image row, an OFDM
//! symbol's worth of raw IQ bytes — travel as [`Token::Block`]: a
//! [`TokenBytes`] handle (an `Arc`'d byte buffer plus an offset/length
//! window, modeled on timely-dataflow's `bytes` crate) that clones and
//! subslices in O(1). A block moving through a ring or a
//! Select-Duplicate kernel costs one handle copy however many bytes it
//! spans; the bytes themselves are written once, at the source.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;
use tpdf_apps::dsp::Complex;
use tpdf_apps::image::GrayImage;

/// A refcounted, immutable byte-slice handle: shared storage plus an
/// `offset..offset + len` window into it.
///
/// Cloning copies three words; [`TokenBytes::slice`] carves a
/// sub-window without touching the storage. Equality compares the
/// *viewed bytes* (two handles over different storage but equal
/// content are equal), which is what Transaction voting needs;
/// [`TokenBytes::shares_storage`] exposes the identity question the
/// zero-copy tests ask.
#[derive(Clone)]
pub struct TokenBytes {
    data: Arc<[u8]>,
    offset: usize,
    len: usize,
}

impl TokenBytes {
    /// Wraps a whole buffer into a shared handle (the one copy a
    /// payload's bytes ever undergo).
    pub fn new(data: impl Into<Arc<[u8]>>) -> Self {
        let data = data.into();
        let len = data.len();
        TokenBytes {
            data,
            offset: 0,
            len,
        }
    }

    /// A zero-copy sub-window of this handle.
    ///
    /// # Panics
    ///
    /// Panics when `range` exceeds this handle's window.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {}..{} out of bounds of a {}-byte block",
            range.start,
            range.end,
            self.len
        );
        TokenBytes {
            data: Arc::clone(&self.data),
            offset: self.offset + range.start,
            len: range.end - range.start,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Number of bytes in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether two handles view the *same allocation* (at any offset) —
    /// true for clones and sub-slices, false for content-equal copies.
    pub fn shares_storage(&self, other: &TokenBytes) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl PartialEq for TokenBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TokenBytes {}

impl fmt::Debug for TokenBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TokenBytes")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

impl From<Vec<u8>> for TokenBytes {
    fn from(data: Vec<u8>) -> Self {
        TokenBytes::new(data)
    }
}

impl From<&[u8]> for TokenBytes {
    fn from(data: &[u8]) -> Self {
        TokenBytes::new(data)
    }
}

/// One data token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A pure rate marker carrying no payload (what the untimed
    /// simulator's counted tokens correspond to).
    Unit,
    /// A signed integer.
    Int(i64),
    /// A floating-point scalar.
    Float(f64),
    /// One (demodulated) bit or byte.
    Byte(u8),
    /// A complex baseband sample.
    Complex(Complex),
    /// A shared grayscale image (edge-detection case study).
    Image(Arc<GrayImage>),
    /// A shared byte block ([`TokenBytes`] handle): image rows, OFDM
    /// symbol payloads — anything large enough that element-wise
    /// movement would dominate. Moves by handle, never by copy.
    Block(TokenBytes),
}

impl Token {
    /// Wraps an image into a shared token.
    pub fn image(image: GrayImage) -> Self {
        Token::Image(Arc::new(image))
    }

    /// Wraps a byte buffer into a shared block token.
    pub fn block(bytes: impl Into<TokenBytes>) -> Self {
        Token::Block(bytes.into())
    }

    /// The block payload, if this token carries one.
    pub fn as_block(&self) -> Option<&TokenBytes> {
        match self {
            Token::Block(b) => Some(b),
            _ => None,
        }
    }

    /// The image payload, if this token carries one.
    pub fn as_image(&self) -> Option<&GrayImage> {
        match self {
            Token::Image(img) => Some(img),
            _ => None,
        }
    }

    /// The complex payload, if this token carries one.
    pub fn as_complex(&self) -> Option<Complex> {
        match self {
            Token::Complex(c) => Some(*c),
            _ => None,
        }
    }

    /// The byte payload, if this token carries one.
    pub fn as_byte(&self) -> Option<u8> {
        match self {
            Token::Byte(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this token carries one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Token::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The floating-point payload, if this token carries one (used by
    /// the FM-radio audio stream).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Token::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The scalar view of this token — what a data-dependent
    /// [`tpdf_core::control::ModeSelector`] sees when a control actor
    /// consumes it. Payload-free and non-numeric tokens ([`Token::Unit`],
    /// [`Token::Image`], [`Token::Block`]) view as 0; floats truncate;
    /// complex samples view as their truncated real part.
    pub fn as_scalar(&self) -> i64 {
        match self {
            Token::Unit | Token::Image(_) | Token::Block(_) => 0,
            Token::Int(i) => *i,
            Token::Float(x) => *x as i64,
            Token::Byte(b) => *b as i64,
            Token::Complex(c) => c.re as i64,
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Unit => write!(f, "·"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Byte(b) => write!(f, "{b}"),
            Token::Complex(c) => write!(f, "{}+{}i", c.re, c.im),
            Token::Image(img) => write!(f, "image({}x{})", img.width(), img.height()),
            Token::Block(b) => write!(f, "block({}B)", b.len()),
        }
    }
}

impl From<u8> for Token {
    fn from(b: u8) -> Self {
        Token::Byte(b)
    }
}

impl From<i64> for Token {
    fn from(i: i64) -> Self {
        Token::Int(i)
    }
}

impl From<f64> for Token {
    fn from(x: f64) -> Self {
        Token::Float(x)
    }
}

impl From<Complex> for Token {
    fn from(c: Complex) -> Self {
        Token::Complex(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Token::from(3u8).as_byte(), Some(3));
        assert_eq!(Token::from(-2i64).as_int(), Some(-2));
        assert_eq!(Token::from(1.5f64).as_float(), Some(1.5));
        assert_eq!(Token::Unit.as_byte(), None);
        assert_eq!(Token::Unit.as_float(), None);
        let c = Complex::new(1.0, -1.0);
        assert_eq!(Token::from(c).as_complex(), Some(c));
        let img = GrayImage::synthetic(4, 4, 1);
        let t = Token::image(img.clone());
        assert_eq!(t.as_image(), Some(&img));
        assert_eq!(t.as_complex(), None);
    }

    #[test]
    fn scalar_views_cover_every_variant() {
        assert_eq!(Token::Unit.as_scalar(), 0);
        assert_eq!(Token::Int(-7).as_scalar(), -7);
        assert_eq!(Token::Byte(3).as_scalar(), 3);
        assert_eq!(Token::Float(2.9).as_scalar(), 2);
        assert_eq!(Token::Complex(Complex::new(4.2, 9.0)).as_scalar(), 4);
        assert_eq!(Token::image(GrayImage::new(1, 1)).as_scalar(), 0);
    }

    #[test]
    fn image_tokens_share_storage() {
        let img = Arc::new(GrayImage::synthetic(8, 8, 2));
        let a = Token::Image(Arc::clone(&img));
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&img), 3);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Token::Unit.to_string(), "·");
        assert_eq!(Token::Byte(1).to_string(), "1");
        assert!(Token::image(GrayImage::new(2, 3))
            .to_string()
            .contains("2x3"));
        assert_eq!(Token::block(vec![1u8, 2, 3]).to_string(), "block(3B)");
    }

    #[test]
    fn block_handles_share_storage_and_slice_zero_copy() {
        let bytes = TokenBytes::new((0u8..32).collect::<Vec<u8>>());
        let a = Token::Block(bytes.clone());
        let b = a.clone();
        // Clones view the same allocation.
        assert!(a.as_block().unwrap().shares_storage(b.as_block().unwrap()));
        assert_eq!(a, b);
        // Sub-slices stay zero-copy and window the right bytes.
        let window = bytes.slice(8..12);
        assert!(window.shares_storage(&bytes));
        assert_eq!(window.as_slice(), &[8, 9, 10, 11]);
        assert_eq!(window.len(), 4);
        assert!(!window.is_empty());
        let nested = window.slice(1..3);
        assert_eq!(nested.as_slice(), &[9, 10]);
        assert_eq!(bytes.as_slice().len(), 32);
    }

    #[test]
    fn block_equality_is_by_content_not_identity() {
        let a = TokenBytes::from(vec![1u8, 2, 3]);
        let b = TokenBytes::from(&[1u8, 2, 3][..]);
        assert_eq!(a, b, "equal content compares equal");
        assert!(!a.shares_storage(&b), "but the storage is distinct");
        assert_ne!(a, TokenBytes::from(vec![1u8, 2]));
        assert_eq!(Token::Block(a).as_scalar(), 0);
        assert!(format!("{:?}", TokenBytes::from(vec![0u8; 4])).contains("len"));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_slice_out_of_bounds_panics() {
        TokenBytes::from(vec![0u8; 4]).slice(2..6);
    }
}

//! Barrier-consistent checkpoints: the versioned binary codec that
//! captures a run's execution state at an iteration barrier, and the
//! structured errors its decoder reports.
//!
//! # Wire format (version 1)
//!
//! ```text
//! "TPDC"  magic (4 bytes)
//! u8      version (currently 1)
//! field*  tagged fields: u8 tag, u64 LE payload length, payload
//! u64 LE  FNV-1a 64 checksum of everything before it
//! ```
//!
//! Fields are self-describing — a reader skips nothing silently: an
//! unknown tag is a [`CheckpointError::UnknownField`], which is what
//! makes version drift loud instead of lossy. The trailing checksum is
//! verified **before** any field is parsed, so a corrupted byte can
//! never drive the parser into a bogus length or a panic; it surfaces
//! as a structured [`CheckpointError`].
//!
//! The checkpoint is captured at an iteration barrier — the model's
//! consistent cut: every node's budget for the iteration is spent, no
//! firing is in flight, and the rings hold exactly the inter-iteration
//! tokens (delays and carried state). That is why ring contents, one
//! `u64` iteration index and the per-node control-ordinal counters are
//! sufficient to resume mid-graph; everything else is derived from the
//! compiled plan or the embedded [`Metrics`] snapshot.

use crate::metrics::Metrics;
use crate::token::{Token, TokenBytes};
use std::fmt;
use std::sync::Arc;
use tpdf_apps::dsp::Complex;
use tpdf_apps::image::GrayImage;
use tpdf_core::mode::Mode;
use tpdf_trace::SnapshotError;

/// The 4-byte magic prefix of every checkpoint frame.
pub const MAGIC: [u8; 4] = *b"TPDC";
/// The current wire-format version.
pub const VERSION: u8 = 1;

const TAG_ITERATION: u8 = 1;
const TAG_FINGERPRINT: u8 = 2;
const TAG_CONTROL_FIRINGS: u8 = 3;
const TAG_CHANNELS: u8 = 4;
const TAG_CAPTURED: u8 = 5;
const TAG_METRICS: u8 = 6;

/// Everything the decoder (or a restore) can report. Never a panic:
/// arbitrary bytes decode to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The frame is shorter than magic + version + checksum.
    TooShort {
        /// Observed frame length in bytes.
        len: usize,
    },
    /// The frame does not start with `"TPDC"`.
    BadMagic,
    /// The version byte names a format this decoder does not speak.
    UnsupportedVersion(u8),
    /// The trailing FNV-1a checksum does not match the frame body —
    /// the bytes were corrupted or truncated in flight.
    ChecksumMismatch {
        /// Checksum recomputed over the frame body.
        expected: u64,
        /// Checksum found in the trailer.
        found: u64,
    },
    /// A field tag this decoder does not know (a newer writer).
    UnknownField(u8),
    /// A field or payload ended before its declared length.
    Truncated {
        /// What was being parsed.
        field: &'static str,
    },
    /// A field parsed but its contents are not valid.
    Malformed {
        /// What was being parsed.
        field: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A required field is absent from the frame.
    MissingField(&'static str),
    /// The checkpoint does not belong to this executor: its graph
    /// fingerprint (node names and channel topology) differs.
    GraphMismatch {
        /// Fingerprint the executor computed for its own graph.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
    /// The checkpoint's shape disagrees with the executor (channel or
    /// node count) — it was captured on a different compilation.
    ShapeMismatch {
        /// What disagreed ("channels", "nodes", …).
        what: &'static str,
        /// Count the executor expects.
        expected: u64,
        /// Count the checkpoint carries.
        found: u64,
    },
    /// The checkpoint's iteration index is not below the configured
    /// iteration count — there is nothing left to resume.
    NothingToResume {
        /// Iteration recorded in the checkpoint.
        iteration: u64,
        /// Total iterations the executor is configured for.
        configured: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::TooShort { len } => {
                write!(f, "checkpoint frame of {len} bytes is too short")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint frame (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this reader speaks {VERSION})")
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: body hashes to {expected:#018x}, trailer says {found:#018x}"
            ),
            CheckpointError::UnknownField(tag) => {
                write!(f, "unknown checkpoint field tag {tag} (written by a newer version?)")
            }
            CheckpointError::Truncated { field } => {
                write!(f, "checkpoint truncated while reading {field}")
            }
            CheckpointError::Malformed { field, detail } => {
                write!(f, "malformed checkpoint field {field}: {detail}")
            }
            CheckpointError::MissingField(field) => {
                write!(f, "checkpoint is missing required field {field}")
            }
            CheckpointError::GraphMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different graph: fingerprint {found:#018x}, \
                 this executor is {expected:#018x}"
            ),
            CheckpointError::ShapeMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint shape mismatch: {found} {what}, this executor has {expected}"
            ),
            CheckpointError::NothingToResume {
                iteration,
                configured,
            } => write!(
                f,
                "checkpoint already at iteration {iteration} of {configured} — nothing to resume"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapshotError> for CheckpointError {
    fn from(value: SnapshotError) -> Self {
        CheckpointError::Malformed {
            field: "metrics",
            detail: value.to_string(),
        }
    }
}

/// The live contents of one channel ring at the barrier, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelContents {
    /// A data channel's tokens.
    Data(Vec<Token>),
    /// A control channel's modes.
    Control(Vec<Mode>),
}

impl ChannelContents {
    /// Number of live elements.
    pub fn len(&self) -> usize {
        match self {
            ChannelContents::Data(tokens) => tokens.len(),
            ChannelContents::Control(modes) => modes.len(),
        }
    }

    /// Whether the ring was empty at the barrier.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One channel's checkpointed state.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelCheckpoint {
    /// The ring's capacity when the checkpoint was taken. Restore uses
    /// it as a floor, not a mandate — Kahn determinacy makes the
    /// streams capacity-independent, so a restoring executor may size
    /// its rings larger (e.g. for later phases) without changing any
    /// observable output.
    pub capacity: u64,
    /// Live elements, oldest first.
    pub contents: ChannelContents,
}

/// A barrier-consistent capture of one run's execution state.
///
/// Produced by [`crate::Executor::run_checkpointed`] (or
/// [`crate::ExecutorPool::run_checkpointed`]); consumed by the
/// `run_restored` counterparts, which resume the run mid-graph as if it
/// had never stopped. Serialized with [`Checkpoint::encode`] /
/// [`Checkpoint::decode`].
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Completed iterations — the barrier index the run stopped at.
    pub iteration: u64,
    /// Structural fingerprint of the graph (node names + channel
    /// topology), checked on restore. Deliberately excludes ring
    /// capacities, firing counts, thread count and placement: those may
    /// all differ between the checkpointing and the restoring executor
    /// without affecting the streams.
    pub fingerprint: u64,
    /// Per-node control-actor ordinals (how many times each node's
    /// mode selector has been consulted). Not part of [`Metrics`], so
    /// carried explicitly — data-dependent control replays wrongly
    /// without it.
    pub control_firings: Vec<u64>,
    /// Per-channel ring state, in channel index order.
    pub channels: Vec<ChannelCheckpoint>,
    /// Sink tokens captured by an [`crate::cases::OutputCapture`] but
    /// not yet taken when the checkpoint was cut — without these,
    /// restore + `take_tokens` would silently drop the prefix.
    pub captured: Vec<Token>,
    /// The partial run's accumulated metrics, embedded through the
    /// lossless text snapshot codec (the serde seam).
    pub metrics: Metrics,
}

/// FNV-1a 64 over `bytes` — the trailer checksum of the wire format.
/// Public so adversarial tests can forge frames with valid trailers.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_field(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

fn put_token(out: &mut Vec<u8>, token: &Token) {
    match token {
        Token::Unit => out.push(0),
        Token::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Token::Float(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Token::Byte(b) => {
            out.push(3);
            out.push(*b);
        }
        Token::Complex(c) => {
            out.push(4);
            out.extend_from_slice(&c.re.to_le_bytes());
            out.extend_from_slice(&c.im.to_le_bytes());
        }
        Token::Image(img) => {
            out.push(5);
            put_u64(out, img.width() as u64);
            put_u64(out, img.height() as u64);
            for &px in img.pixels() {
                out.extend_from_slice(&px.to_le_bytes());
            }
        }
        // A block's bytes are re-inlined: the handle's sharing is an
        // in-process optimisation, the wire carries the payload.
        Token::Block(bytes) => {
            out.push(6);
            put_u64(out, bytes.len() as u64);
            out.extend_from_slice(bytes.as_slice());
        }
    }
}

fn put_mode(out: &mut Vec<u8>, mode: &Mode) {
    match mode {
        Mode::WaitAll => out.push(0),
        Mode::HighestPriority => out.push(1),
        Mode::SelectOne(i) => {
            out.push(2);
            put_u64(out, *i as u64);
        }
        Mode::SelectMany(list) => {
            out.push(3);
            put_u64(out, list.len() as u64);
            for &i in list {
                put_u64(out, i as u64);
            }
        }
    }
}

/// Bounds-checked cursor over a frame body. Every read reports
/// [`CheckpointError::Truncated`] instead of slicing out of range, so
/// the decoder is total over arbitrary input.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated { field });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, CheckpointError> {
        Ok(self.bytes(1, field)?[0])
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, CheckpointError> {
        let raw = self.bytes(8, field)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self, field: &'static str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    /// A declared element count, sanity-capped by the bytes actually
    /// remaining (`min_size` = the smallest possible encoding of one
    /// element) so a forged count cannot drive a huge allocation.
    fn count(&mut self, min_size: usize, field: &'static str) -> Result<usize, CheckpointError> {
        let declared = self.u64(field)?;
        let ceiling = (self.remaining() / min_size.max(1)) as u64;
        if declared > ceiling {
            return Err(CheckpointError::Malformed {
                field,
                detail: format!("declared {declared} elements, only {ceiling} can fit"),
            });
        }
        Ok(declared as usize)
    }

    fn token(&mut self) -> Result<Token, CheckpointError> {
        let field = "token";
        Ok(match self.u8(field)? {
            0 => Token::Unit,
            1 => {
                let raw = self.bytes(8, field)?;
                Token::Int(i64::from_le_bytes(raw.try_into().expect("8-byte slice")))
            }
            2 => Token::Float(self.f64(field)?),
            3 => Token::Byte(self.u8(field)?),
            4 => Token::Complex(Complex {
                re: self.f64(field)?,
                im: self.f64(field)?,
            }),
            5 => {
                let width = self.u64(field)? as usize;
                let height = self.u64(field)? as usize;
                let count = width
                    .checked_mul(height)
                    .ok_or(CheckpointError::Malformed {
                        field,
                        detail: "image dimensions overflow".to_string(),
                    })?;
                if self.remaining() < count * 4 {
                    return Err(CheckpointError::Truncated { field });
                }
                let mut pixels = Vec::with_capacity(count);
                for _ in 0..count {
                    let raw = self.bytes(4, field)?;
                    pixels.push(f32::from_le_bytes(raw.try_into().expect("4-byte slice")));
                }
                Token::Image(Arc::new(GrayImage::from_pixels(width, height, pixels)))
            }
            6 => {
                let len = self.u64(field)? as usize;
                Token::Block(TokenBytes::new(self.bytes(len, field)?))
            }
            other => {
                return Err(CheckpointError::Malformed {
                    field,
                    detail: format!("unknown token tag {other}"),
                })
            }
        })
    }

    fn mode(&mut self) -> Result<Mode, CheckpointError> {
        let field = "mode";
        Ok(match self.u8(field)? {
            0 => Mode::WaitAll,
            1 => Mode::HighestPriority,
            2 => Mode::SelectOne(self.u64(field)? as usize),
            3 => {
                let count = self.count(8, field)?;
                let mut list = Vec::with_capacity(count);
                for _ in 0..count {
                    list.push(self.u64(field)? as usize);
                }
                Mode::SelectMany(list)
            }
            other => {
                return Err(CheckpointError::Malformed {
                    field,
                    detail: format!("unknown mode tag {other}"),
                })
            }
        })
    }
}

impl Checkpoint {
    /// Serializes the checkpoint into a self-describing, checksummed
    /// frame (see the module docs for the wire format).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);

        put_field(&mut out, TAG_ITERATION, &self.iteration.to_le_bytes());
        put_field(&mut out, TAG_FINGERPRINT, &self.fingerprint.to_le_bytes());

        let mut payload = Vec::new();
        put_u64(&mut payload, self.control_firings.len() as u64);
        for &n in &self.control_firings {
            put_u64(&mut payload, n);
        }
        put_field(&mut out, TAG_CONTROL_FIRINGS, &payload);

        payload.clear();
        put_u64(&mut payload, self.channels.len() as u64);
        for channel in &self.channels {
            put_u64(&mut payload, channel.capacity);
            match &channel.contents {
                ChannelContents::Data(tokens) => {
                    payload.push(0);
                    put_u64(&mut payload, tokens.len() as u64);
                    for token in tokens {
                        put_token(&mut payload, token);
                    }
                }
                ChannelContents::Control(modes) => {
                    payload.push(1);
                    put_u64(&mut payload, modes.len() as u64);
                    for mode in modes {
                        put_mode(&mut payload, mode);
                    }
                }
            }
        }
        put_field(&mut out, TAG_CHANNELS, &payload);

        payload.clear();
        put_u64(&mut payload, self.captured.len() as u64);
        for token in &self.captured {
            put_token(&mut payload, token);
        }
        put_field(&mut out, TAG_CAPTURED, &payload);

        put_field(&mut out, TAG_METRICS, self.metrics.to_snapshot().as_bytes());

        let digest = checksum(&out);
        put_u64(&mut out, digest);
        out
    }

    /// Decodes a frame produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// Total over arbitrary bytes — every failure is a structured
    /// [`CheckpointError`], never a panic. The checksum is verified
    /// before any field is parsed.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() + 1 + 8 {
            return Err(CheckpointError::TooShort { len: bytes.len() });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = bytes[MAGIC.len()];
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let found = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let expected = checksum(body);
        if expected != found {
            return Err(CheckpointError::ChecksumMismatch { expected, found });
        }

        let mut reader = Reader::new(&body[MAGIC.len() + 1..]);
        let mut iteration = None;
        let mut fingerprint = None;
        let mut control_firings = None;
        let mut channels = None;
        let mut captured = None;
        let mut metrics = None;
        while reader.remaining() > 0 {
            let tag = reader.u8("field tag")?;
            let len = reader.u64("field length")? as usize;
            let payload = reader.bytes(len, "field payload")?;
            let mut field = Reader::new(payload);
            match tag {
                TAG_ITERATION => iteration = Some(field.u64("iteration")?),
                TAG_FINGERPRINT => fingerprint = Some(field.u64("fingerprint")?),
                TAG_CONTROL_FIRINGS => {
                    let count = field.count(8, "control_firings")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        list.push(field.u64("control_firings")?);
                    }
                    control_firings = Some(list);
                }
                TAG_CHANNELS => {
                    let count = field.count(10, "channels")?;
                    let mut list = Vec::with_capacity(count);
                    for _ in 0..count {
                        let capacity = field.u64("channel capacity")?;
                        let kind = field.u8("channel kind")?;
                        let contents = match kind {
                            0 => {
                                let n = field.count(1, "channel tokens")?;
                                let mut tokens = Vec::with_capacity(n);
                                for _ in 0..n {
                                    tokens.push(field.token()?);
                                }
                                ChannelContents::Data(tokens)
                            }
                            1 => {
                                let n = field.count(1, "channel modes")?;
                                let mut modes = Vec::with_capacity(n);
                                for _ in 0..n {
                                    modes.push(field.mode()?);
                                }
                                ChannelContents::Control(modes)
                            }
                            other => {
                                return Err(CheckpointError::Malformed {
                                    field: "channel kind",
                                    detail: format!("unknown channel kind {other}"),
                                })
                            }
                        };
                        list.push(ChannelCheckpoint { capacity, contents });
                    }
                    channels = Some(list);
                }
                TAG_CAPTURED => {
                    let count = field.count(1, "captured")?;
                    let mut tokens = Vec::with_capacity(count);
                    for _ in 0..count {
                        tokens.push(field.token()?);
                    }
                    captured = Some(tokens);
                }
                TAG_METRICS => {
                    let text =
                        std::str::from_utf8(payload).map_err(|e| CheckpointError::Malformed {
                            field: "metrics",
                            detail: e.to_string(),
                        })?;
                    metrics = Some(Metrics::from_snapshot(text)?);
                    // The snapshot text is the whole payload.
                    field.bytes(field.remaining(), "metrics")?;
                }
                other => return Err(CheckpointError::UnknownField(other)),
            }
            if field.remaining() > 0 {
                return Err(CheckpointError::Malformed {
                    field: "field payload",
                    detail: format!("{} trailing bytes after field {tag}", field.remaining()),
                });
            }
        }

        Ok(Checkpoint {
            iteration: iteration.ok_or(CheckpointError::MissingField("iteration"))?,
            fingerprint: fingerprint.ok_or(CheckpointError::MissingField("fingerprint"))?,
            control_firings: control_firings
                .ok_or(CheckpointError::MissingField("control_firings"))?,
            channels: channels.ok_or(CheckpointError::MissingField("channels"))?,
            captured: captured.ok_or(CheckpointError::MissingField("captured"))?,
            metrics: metrics.ok_or(CheckpointError::MissingField("metrics"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::PlacementPolicy;
    use std::time::Duration;

    fn zero_metrics() -> Metrics {
        Metrics {
            iterations: 0,
            threads: 1,
            effective_workers: 1,
            placement: PlacementPolicy::WorkStealing,
            firings: Vec::new(),
            tokens_pushed: Vec::new(),
            channel_high_water: Vec::new(),
            channel_capacity: Vec::new(),
            total_tokens: 0,
            elapsed: Duration::ZERO,
            tokens_per_sec: 0.0,
            deadline_misses: 0,
            vote_failures: 0,
            deadline_selections: Vec::new(),
            mode_sequences: Vec::new(),
            worker_firings: Vec::new(),
            worker_steals: Vec::new(),
            rebinds: Vec::new(),
            pinned_cores: Vec::new(),
            arena_hits: 0,
            arena_misses: 0,
            arena_recycled: 0,
            arena_retired: 0,
        }
    }

    fn empty_checkpoint() -> Checkpoint {
        Checkpoint {
            iteration: 0,
            fingerprint: 0,
            control_firings: Vec::new(),
            channels: Vec::new(),
            captured: Vec::new(),
            metrics: zero_metrics(),
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            iteration: 7,
            fingerprint: 0xdead_beef_cafe_f00d,
            control_firings: vec![0, 3, 12],
            channels: vec![
                ChannelCheckpoint {
                    capacity: 8,
                    contents: ChannelContents::Data(vec![
                        Token::Unit,
                        Token::Int(-42),
                        Token::Float(2.5),
                        Token::Byte(0xA5),
                        Token::Complex(Complex { re: 1.0, im: -1.0 }),
                        Token::Image(Arc::new(GrayImage::from_pixels(
                            2,
                            2,
                            vec![0.0, 0.25, 0.5, 1.0],
                        ))),
                        Token::Block(TokenBytes::new(vec![1u8, 2, 3, 4, 5])),
                    ]),
                },
                ChannelCheckpoint {
                    capacity: 4,
                    contents: ChannelContents::Control(vec![
                        Mode::WaitAll,
                        Mode::HighestPriority,
                        Mode::SelectOne(3),
                        Mode::SelectMany(vec![0, 2]),
                    ]),
                },
            ],
            captured: vec![Token::Int(9), Token::Block(TokenBytes::new(vec![7u8; 9]))],
            metrics: zero_metrics(),
        }
    }

    #[test]
    fn round_trips_exactly() {
        let checkpoint = sample_checkpoint();
        let decoded = Checkpoint::decode(&checkpoint.encode()).unwrap();
        assert_eq!(decoded, checkpoint);
    }

    #[test]
    fn sliced_block_reinlines_payload_only() {
        let backing = TokenBytes::new((0u8..32).collect::<Vec<u8>>());
        let mut sliced = empty_checkpoint();
        sliced.channels.push(ChannelCheckpoint {
            capacity: 2,
            contents: ChannelContents::Data(vec![Token::Block(backing.slice(8..12))]),
        });
        let mut whole = empty_checkpoint();
        whole.channels.push(ChannelCheckpoint {
            capacity: 2,
            contents: ChannelContents::Data(vec![Token::Block(backing.clone())]),
        });
        let decoded = Checkpoint::decode(&sliced.encode()).unwrap();
        let ChannelContents::Data(tokens) = &decoded.channels[0].contents else {
            panic!("data channel expected");
        };
        assert_eq!(tokens[0].as_block().unwrap().as_slice(), &[8, 9, 10, 11]);
        // Only the slice's 4 bytes travel, not the 32-byte backing.
        assert_eq!(whole.encode().len() - sliced.encode().len(), 28);
    }

    #[test]
    fn every_single_byte_corruption_is_structured() {
        let bytes = sample_checkpoint().encode();
        for offset in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= 0x01;
            let err =
                Checkpoint::decode(&corrupt).expect_err("a flipped bit must never decode cleanly");
            // Any structured error is acceptable; reaching here without
            // a panic is the property.
            let _ = err.to_string();
        }
    }

    #[test]
    fn truncation_is_structured() {
        let bytes = sample_checkpoint().encode();
        for len in 0..bytes.len() {
            assert!(Checkpoint::decode(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn version_bump_is_rejected_by_name() {
        let mut bytes = sample_checkpoint().encode();
        bytes[4] = VERSION + 1;
        // Recompute the trailer so the version check — not the
        // checksum — is what rejects the frame.
        let body_len = bytes.len() - 8;
        let digest = checksum(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&digest.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(VERSION + 1))
        );
    }

    #[test]
    fn unknown_field_is_rejected_by_tag() {
        let mut bytes = sample_checkpoint().encode();
        bytes.truncate(bytes.len() - 8); // strip the trailer
        bytes.push(200); // unknown tag
        bytes.extend_from_slice(&0u64.to_le_bytes()); // empty payload
        let digest = checksum(&bytes);
        bytes.extend_from_slice(&digest.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::UnknownField(200))
        );
    }
}

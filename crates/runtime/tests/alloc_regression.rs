//! Allocation-regression guard: a steady-state firing allocates
//! nothing.
//!
//! The per-worker [`tpdf_runtime::SlabArena`] recycles every firing
//! slab, the executor reuses its port containers and scalar buffers,
//! and the mode logs and ready queues are pre-reserved — so once the
//! arenas are warm, extra iterations must not touch the global
//! allocator at all. This test pins that down with a counting
//! allocator: the figure2 graph is run twice on the single-worker fast
//! path, once for a few iterations and once for many, and the two runs
//! must perform *exactly* the same number of allocations. Any
//! per-firing (or per-iteration) allocation that sneaks back into the
//! hot path makes the counts diverge by hundreds and fails loudly.
//!
//! The guard lives in its own integration-test binary because the
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tpdf_core::examples::figure2_graph;
use tpdf_runtime::{Executor, KernelRegistry, RuntimeConfig};
use tpdf_symexpr::Binding;

/// Counts every allocation (alloc, alloc_zeroed, realloc) and defers
/// to the system allocator. Deallocations are not counted: the guard
/// compares allocation *counts*, and frees mirror allocations.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations performed by running figure2 for `iterations`
/// iterations on the single-worker fast path (1 thread, virtual
/// clock — the benchmarked configuration). Executor construction stays
/// outside the measured window; the window covers the whole `run`,
/// including metrics assembly, whose allocation count is independent
/// of the iteration count.
fn allocations_for(iterations: u64) -> u64 {
    let graph = figure2_graph();
    let config = RuntimeConfig::new(Binding::from_pairs([("p", 8)]))
        .with_threads(1)
        .with_iterations(iterations);
    let executor = Executor::new(&graph, config).expect("figure2 configures");
    let registry = KernelRegistry::new();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let metrics = executor.run(&registry).expect("figure2 runs");
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(metrics.iterations, iterations);
    assert!(
        metrics.arena_misses > 0,
        "cold start must warm the arena through misses"
    );
    assert!(
        metrics.arena_hits > metrics.arena_misses,
        "steady state must be served from the arena freelists"
    );
    after - before
}

#[test]
fn steady_state_iterations_allocate_nothing() {
    // One throwaway run absorbs process-level one-time costs (lazy
    // locks, thread-local init) so the two measured runs are
    // like-for-like.
    allocations_for(2);
    let short = allocations_for(8);
    let long = allocations_for(64);
    assert_eq!(
        short, long,
        "56 extra iterations changed the allocation count: \
         a per-firing allocation is back on the hot path"
    );
}

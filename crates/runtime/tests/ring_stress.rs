//! Multi-threaded stress/property test of the lock-free SPSC ring:
//! a producer thread and a consumer thread exchange a numbered token
//! stream through randomly sized batches over randomly sized rings,
//! and the consumer must observe exactly the FIFO sequence — no lost,
//! duplicated or reordered element — while the ring never exceeds its
//! capacity.

use proptest::prelude::*;
use tpdf_runtime::RingBuffer;

/// Pushes `0..total` through a ring of the given capacity using the
/// given (cycled) batch-size schedules and returns what the consumer
/// received.
fn pump(capacity: usize, total: u64, push_sizes: &[usize], pop_sizes: &[usize]) -> Vec<u64> {
    let ring: RingBuffer<u64> = RingBuffer::new("stress", capacity);
    let mut received = Vec::with_capacity(total as usize);
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut next = 0u64;
            let mut slab = Vec::new();
            for (i, &raw) in push_sizes.iter().cycle().enumerate() {
                if next >= total {
                    break;
                }
                // Batches are clamped to the capacity and the remaining
                // stream; a zero entry degenerates to a single push.
                let batch = raw.clamp(1, capacity).min((total - next) as usize);
                slab.extend((0..batch as u64).map(|k| next + k));
                while ring.free() < batch {
                    std::thread::yield_now();
                }
                ring.push_from(&mut slab).expect("free space was checked");
                assert!(slab.is_empty(), "push_from drains the slab");
                next += batch as u64;
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
            }
        });
        for (i, &raw) in pop_sizes.iter().cycle().enumerate() {
            let remaining = total as usize - received.len();
            if remaining == 0 {
                break;
            }
            // Wait for at least one token, then take at most `raw`: a
            // consumer insisting on more than the producer can fit into
            // the remaining ring space would deadlock the pair.
            let mut available = ring.len();
            while available == 0 {
                std::thread::yield_now();
                available = ring.len();
            }
            let want = raw.clamp(1, capacity).min(remaining).min(available);
            ring.pop_into(want, &mut received);
            if i % 5 == 0 {
                std::thread::yield_now();
            }
        }
    });
    assert!(ring.is_empty(), "everything produced was consumed");
    assert!(
        ring.high_water() <= capacity,
        "high water {} exceeds capacity {capacity}",
        ring.high_water()
    );
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spsc_ring_is_fifo_under_concurrency(
        capacity in 1usize..33,
        total in 1u64..5_000,
        push_sizes in proptest::collection::vec(1usize..17, 1..8),
        pop_sizes in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let received = pump(capacity, total, &push_sizes, &pop_sizes);
        prop_assert_eq!(received.len() as u64, total);
        for (i, &v) in received.iter().enumerate() {
            prop_assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn spsc_ring_survives_tiny_rings_and_single_tokens(
        total in 1u64..600,
        capacity in 1usize..4,
    ) {
        // Worst case for cursor wraparound: capacity 1-3 with
        // single-element batches forces maximal head/tail traffic.
        let received = pump(capacity, total, &[1], &[1]);
        prop_assert_eq!(received, (0..total).collect::<Vec<_>>());
    }
}

//! Multi-threaded stress/property tests of the lock-free SPSC ring:
//! a producer thread and a consumer thread exchange a numbered token
//! stream through randomly sized batches over randomly sized rings,
//! and the consumer must observe exactly the FIFO sequence — no lost,
//! duplicated or reordered element — while the ring never exceeds its
//! capacity. The in-place growth path (used by the executor's rebind
//! barrier) and the certified high-water accounting are covered here
//! too.

use proptest::prelude::*;
use tpdf_runtime::{RingBuffer, Token, TokenBytes};

/// Pushes `start..start + total` through an existing ring using the
/// given (cycled) batch-size schedules, appending what the consumer
/// received to `received`.
fn pump_through(
    ring: &RingBuffer<u64>,
    start: u64,
    total: u64,
    push_sizes: &[usize],
    pop_sizes: &[usize],
    received: &mut Vec<u64>,
) {
    let capacity = ring.capacity();
    let consumed_target = received.len() + total as usize;
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut next = start;
            let end = start + total;
            let mut slab = Vec::new();
            for (i, &raw) in push_sizes.iter().cycle().enumerate() {
                if next >= end {
                    break;
                }
                // Batches are clamped to the capacity and the remaining
                // stream; a zero entry degenerates to a single push.
                let batch = raw.clamp(1, capacity).min((end - next) as usize);
                slab.extend((0..batch as u64).map(|k| next + k));
                while ring.free() < batch {
                    std::thread::yield_now();
                }
                ring.push_from(&mut slab).expect("free space was checked");
                assert!(slab.is_empty(), "push_from drains the slab");
                next += batch as u64;
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
            }
        });
        for (i, &raw) in pop_sizes.iter().cycle().enumerate() {
            let remaining = consumed_target - received.len();
            if remaining == 0 {
                break;
            }
            // Wait for at least one token, then take at most `raw`: a
            // consumer insisting on more than the producer can fit into
            // the remaining ring space would deadlock the pair.
            let mut available = ring.len();
            while available == 0 {
                std::thread::yield_now();
                available = ring.len();
            }
            let want = raw.clamp(1, capacity).min(remaining).min(available);
            ring.pop_into(want, received);
            if i % 5 == 0 {
                std::thread::yield_now();
            }
        }
    });
}

/// Pushes `0..total` through a fresh ring of the given capacity and
/// returns what the consumer received.
fn pump(capacity: usize, total: u64, push_sizes: &[usize], pop_sizes: &[usize]) -> Vec<u64> {
    let ring: RingBuffer<u64> = RingBuffer::new("stress", capacity);
    let mut received = Vec::with_capacity(total as usize);
    pump_through(&ring, 0, total, push_sizes, pop_sizes, &mut received);
    assert!(ring.is_empty(), "everything produced was consumed");
    assert!(
        ring.high_water() <= capacity,
        "high water {} exceeds capacity {capacity}",
        ring.high_water()
    );
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spsc_ring_is_fifo_under_concurrency(
        capacity in 1usize..33,
        total in 1u64..5_000,
        push_sizes in proptest::collection::vec(1usize..17, 1..8),
        pop_sizes in proptest::collection::vec(1usize..17, 1..8),
    ) {
        let received = pump(capacity, total, &push_sizes, &pop_sizes);
        prop_assert_eq!(received.len() as u64, total);
        for (i, &v) in received.iter().enumerate() {
            prop_assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn spsc_ring_survives_tiny_rings_and_single_tokens(
        total in 1u64..600,
        capacity in 1usize..4,
    ) {
        // Worst case for cursor wraparound: capacity 1-3 with
        // single-element batches forces maximal head/tail traffic.
        let received = pump(capacity, total, &[1], &[1]);
        prop_assert_eq!(received, (0..total).collect::<Vec<_>>());
    }

    /// In-place growth between quiescent phases (exactly the executor's
    /// rebind-barrier usage): the stream must stay FIFO across an
    /// arbitrary schedule of growths, with live elements and advanced
    /// cursors surviving each one.
    #[test]
    fn grow_between_concurrent_phases_preserves_fifo(
        phases in proptest::collection::vec((1usize..17, 1u64..800), 2..5),
        leftover in 0usize..3,
        push_sizes in proptest::collection::vec(1usize..9, 1..5),
        pop_sizes in proptest::collection::vec(1usize..9, 1..5),
    ) {
        let ring: RingBuffer<u64> = RingBuffer::new("grow-stress", 3 + leftover);
        let mut received = Vec::new();
        let mut next = 0u64;
        // Standing occupancy carried across every phase boundary, so
        // growth always has live (and usually wrapped) elements to
        // re-home. FIFO order makes the consumer receive these markers
        // first and leave the last `leftover` stream elements behind.
        ring.push_clones(&u64::MAX, leftover).unwrap();
        for (extra, total) in phases {
            ring.grow(ring.capacity() + extra);
            pump_through(&ring, next, total, &push_sizes, &pop_sizes, &mut received);
            next += total;
        }
        prop_assert_eq!(ring.len(), leftover, "standing occupancy is preserved");
        prop_assert_eq!(received.len() as u64, next);
        // Everything pushed, in order: the markers, then the stream.
        for (i, &v) in received.iter().enumerate() {
            let expected = if i < leftover {
                u64::MAX
            } else {
                (i - leftover) as u64
            };
            prop_assert_eq!(v, expected);
        }
        // The elements still stored are the most recently pushed ones.
        let mut tail = Vec::new();
        ring.pop_into(leftover, &mut tail);
        prop_assert_eq!(tail, (next - leftover as u64..next).collect::<Vec<_>>());
        prop_assert!(ring.high_water() <= ring.capacity());
    }

    /// Refcounted block handles through the same grow-under-concurrency
    /// schedule: every token is a [`TokenBytes`] slice of one shared
    /// payload, and after batch transfers, wraparound and in-place
    /// growth each received handle must still *share storage* with the
    /// master block — growth re-homes the handles, never the bytes.
    #[test]
    fn block_handles_stay_zero_copy_across_growth(
        phases in proptest::collection::vec((1usize..9, 1usize..300), 2..4),
        batch in 1usize..4,
    ) {
        let total: usize = phases.iter().map(|&(_, count)| count).sum();
        let master = TokenBytes::new(
            (0..total).map(|i| (i % 251) as u8).collect::<Vec<u8>>(),
        );
        let ring: RingBuffer<Token> = RingBuffer::new("block-grow", 3);
        let mut received: Vec<Token> = Vec::new();
        let mut next = 0usize;
        for (extra, count) in phases {
            // Quiescent between phases, exactly like the rebind barrier.
            ring.grow(ring.capacity() + extra);
            let end = next + count;
            let consumed_target = received.len() + count;
            std::thread::scope(|s| {
                let (master, ring) = (&master, &ring);
                s.spawn(move || {
                    let mut slab = Vec::new();
                    let mut at = next;
                    while at < end {
                        let n = batch.min(end - at).min(ring.capacity());
                        slab.extend((at..at + n).map(|i| Token::Block(master.slice(i..i + 1))));
                        while ring.free() < n {
                            std::thread::yield_now();
                        }
                        ring.push_from(&mut slab).expect("free space was checked");
                        at += n;
                    }
                });
                while received.len() < consumed_target {
                    let available = ring.len();
                    if available == 0 {
                        std::thread::yield_now();
                        continue;
                    }
                    let want = batch.min(consumed_target - received.len()).min(available);
                    ring.pop_into(want, &mut received);
                }
            });
            next = end;
        }
        prop_assert!(ring.is_empty());
        prop_assert_eq!(received.len(), total);
        for (i, token) in received.iter().enumerate() {
            let block = token.as_block().expect("every token is a block");
            prop_assert_eq!(block.as_slice(), &[(i % 251) as u8][..]);
            prop_assert!(
                block.shares_storage(&master),
                "token {} was deep-copied somewhere in the transfer path", i
            );
        }
    }

    /// The certified high-water mark: exact whenever an operation ends
    /// quiescent (the executor reads it after the run, when every
    /// worker has stopped), monotone, and never above the capacity.
    /// Unlike the old producer-side `tail - stale_head` reading, no
    /// recorded value can exceed the occupancy that truly existed.
    #[test]
    fn high_water_is_exact_at_quiescent_handoffs(
        batches in proptest::collection::vec((1usize..17, 0usize..17), 1..12),
    ) {
        let capacity = 16;
        let ring: RingBuffer<u64> = RingBuffer::new("hw", capacity);
        let mut model_occupancy = 0usize;
        let mut model_high = 0usize;
        let mut out = Vec::new();
        for (push, pop) in batches {
            let push = push.min(capacity - model_occupancy);
            ring.push_clones(&7u64, push).unwrap();
            model_occupancy += push;
            model_high = model_high.max(model_occupancy);
            prop_assert_eq!(ring.high_water(), model_high);
            let pop = pop.min(model_occupancy);
            ring.pop_into(pop, &mut out);
            model_occupancy -= pop;
        }
        prop_assert_eq!(ring.high_water(), model_high);
        prop_assert!(ring.high_water() <= capacity);
    }
}

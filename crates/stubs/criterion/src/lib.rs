//! Offline stub of the `criterion` crate (the subset this workspace
//! uses).
//!
//! The build container has no access to crates.io, so this crate
//! provides an API-compatible harness for the `[[bench]] harness = false`
//! targets: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical
//! machinery it times a fixed number of samples per benchmark and prints
//! mean / min / max wall-clock times (plus derived element throughput),
//! which is enough to compare configurations and to feed the JSON
//! summaries the bench binaries emit.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Timing statistics of one benchmark, also returned to callers so bench
/// binaries can export machine-readable summaries.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark identifier (`group/function/parameter`).
    pub id: String,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
    /// Elements per second, when a [`Throughput`] was configured.
    pub elements_per_sec: Option<f64>,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    samples: Vec<Sample>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let sample = run_benchmark(id.into().id, 10, None, |b| f(b));
        self.samples.push(sample);
    }

    /// All samples recorded so far (used by bench binaries to export
    /// JSON summaries).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benches a function.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        let sample = run_benchmark(id, self.sample_size, self.throughput, |b| f(b));
        self.criterion.samples.push(sample);
        self
    }

    /// Benches a function against an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        let sample = run_benchmark(id, self.sample_size, self.throughput, |b| f(b, input));
        self.criterion.samples.push(sample);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    durations: Vec<Duration>,
    samples_requested: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing each run.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.samples_requested {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

fn run_benchmark(
    id: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) -> Sample {
    let mut bencher = Bencher {
        durations: Vec::new(),
        samples_requested: sample_size,
    };
    f(&mut bencher);
    let mut durations = if bencher.durations.is_empty() {
        vec![Duration::ZERO]
    } else {
        bencher.durations
    };
    let min = *durations.iter().min().expect("at least one sample");
    let max = *durations.iter().max().expect("at least one sample");
    // Interquartile mean: drop the top and bottom quarter of samples
    // (where there are enough) so that scheduling hiccups on a busy
    // host do not swamp the estimate — a poor man's version of real
    // criterion's outlier-robust statistics.
    durations.sort_unstable();
    let trim = if durations.len() >= 5 {
        durations.len() / 4
    } else {
        0
    };
    let kept = &durations[trim..durations.len() - trim];
    let total: Duration = kept.iter().sum();
    let mean = total / kept.len() as u32;
    let elements_per_sec = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            Some(n as f64 / mean.as_secs_f64())
        }
        _ => None,
    };
    match elements_per_sec {
        Some(eps) => {
            println!("bench {id:<50} mean {mean:>12?} (min {min:?}, max {max:?}, {eps:.0} elem/s)")
        }
        None => println!("bench {id:<50} mean {mean:>12?} (min {min:?}, max {max:?})"),
    }
    Sample {
        id,
        mean,
        min,
        max,
        elements_per_sec,
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_function(BenchmarkId::from_parameter("plain"), |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 2 * 2));
    }

    criterion_group!(benches, demo_bench);

    #[test]
    fn harness_records_samples() {
        let mut criterion = Criterion::default();
        benches(&mut criterion);
        assert_eq!(criterion.samples().len(), 3);
        assert!(criterion.samples()[0].id.starts_with("demo/square/4"));
        assert!(criterion.samples()[0].elements_per_sec.is_some());
        for sample in criterion.samples() {
            assert!(sample.min <= sample.mean && sample.mean <= sample.max);
        }
    }
}

//! Offline stub of the `proptest` crate (the subset this workspace uses).
//!
//! The build container has no access to crates.io, so this crate
//! reimplements the slice of proptest the test suites rely on:
//!
//! * the [`proptest!`] macro with the `name(arg in strategy, ...)` form
//!   and an optional `#![proptest_config(...)]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * integer-range strategies (`0u64..100`), tuples of strategies,
//!   [`collection::vec`] and [`sample::select`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated values visible in the assertion message. Generation is
//! deterministic per test (seeded from the test's module path), so
//! failures are reproducible across runs.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of test values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of values produced.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_small_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_small_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<i128> {
        type Value = i128;
        fn generate(&self, rng: &mut TestRng) -> i128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end.wrapping_sub(self.start) as u128;
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start.wrapping_add((wide % span) as i128)
        }
    }

    impl Strategy for Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            let span = self.end - self.start;
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start + wide % span
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of values with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Creates a strategy producing vectors whose elements come from
    /// `element` and whose length lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Creates a strategy that picks one of `options` per case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() as usize) % self.options.len();
            self.options[i].clone()
        }
    }
}

pub mod test_runner {
    //! Configuration and the deterministic RNG driving generation.

    /// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 32 keeps the offline suite
            // fast while still sweeping each property's input space.
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test identifier (module path +
        /// function name), so each property gets a stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for byte in name.bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }

        /// Returns the next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body for every generated case.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (no shrinking: panics directly).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("self-test");
        for _ in 0..200 {
            let v = (0u64..10).generate(&mut rng);
            assert!(v < 10);
            let (a, b) = (0u64..4, -3i64..3).generate(&mut rng);
            assert!(a < 4 && (-3..3).contains(&b));
            let xs = crate::collection::vec(0u64..9, 1..5).generate(&mut rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 9));
            let pick = crate::sample::select(vec![2usize, 4]).generate(&mut rng);
            assert!(pick == 2 || pick == 4);
            let wide = (-50i128..50).generate(&mut rng);
            assert!((-50..50).contains(&wide));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, asserts and multiple arguments.
        #[test]
        fn macro_smoke(x in 0u64..100, y in 1u64..10) {
            prop_assert!(x < 100);
            prop_assert_eq!((x * y) / y, x);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(sel in prop::sample::select(vec![512usize, 1024])) {
            prop_assert!(sel == 512 || sel == 1024);
        }
    }
}

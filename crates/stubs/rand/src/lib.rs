//! Offline stub of the `rand` crate (the subset this workspace uses).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer and float ranges, backed by a
//! deterministic SplitMix64 generator. Statistical quality is more than
//! sufficient for the synthetic test signals and images generated here;
//! the API mirrors rand 0.8 (including the `SampleUniform` blanket impl
//! shape, which type inference relies on) so the real crate can be
//! dropped in later.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Minimal clone of `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Minimal clone of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampling rule (clone of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[start, end)`.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R, start: &Self, end: &Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R, start: &Self, end: &Self) -> Self {
                let span = (*end as i128 - *start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (*start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R, start: &Self, end: &Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + (end - start) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R, start: &Self, end: &Self) -> Self {
        f64::sample_from(rng, &(*start as f64), &(*end as f64)) as f32
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_from(rng, &self.start, &self.end)
    }
}

/// Minimal clone of `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Pre-built generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood, 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let b = rng.gen_range(0..2u8);
            assert!(b < 2);
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn float_inference_matches_context() {
        // Mirrors the call shape used by the image synthesizer: the f32
        // context must pin the float literals to f32.
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: f32 = 0.0;
        v += rng.gen_range(-8.0..8.0);
        assert!((-8.0..8.0).contains(&v));
    }

    #[test]
    fn values_vary() {
        let mut rng = StdRng::seed_from_u64(3);
        let first = rng.gen_range(0u64..u64::MAX);
        let second = rng.gen_range(0u64..u64::MAX);
        assert_ne!(first, second);
    }
}

//! Offline stub of the `serde` crate.
//!
//! The build container has no access to crates.io, and this workspace
//! only uses serde for `#[derive(Serialize, Deserialize)]` annotations
//! (no code path actually serializes anything — there is no serde_json
//! in the tree). This stub therefore provides the two derive macros as
//! no-ops so the annotations compile; swapping in the real serde later
//! is a one-line Cargo.toml change and requires no source edits.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! The session manager: admission, ingress queues, dispatch, lifecycle.

use crate::metrics::{ServiceMetrics, SessionMetrics, SessionPhase};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tpdf_core::graph::TpdfGraph;
use tpdf_runtime::executor::ClockMode;
use tpdf_runtime::pool::JobTicket;
use tpdf_runtime::{
    CompiledExecutor, Executor, ExecutorPool, KernelRegistry, Metrics, ProgressSnapshot,
    RuntimeConfig, RuntimeError,
};
use tpdf_trace::{EventKind, Tracer};

/// Identifies one admitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {}", self.0)
    }
}

/// Identifies one submitted request within its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// What happens when an admission bound is hit: the session limit at
/// [`TpdfService::open_session`], or a full ingress queue at
/// [`TpdfService::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Refuse immediately with an error (and count the rejection in
    /// [`ServiceMetrics`]). The default: a serving layer should shed
    /// load it cannot carry rather than stall its callers.
    #[default]
    Reject,
    /// Block the caller until capacity frees up (a session retires, a
    /// queued request dispatches). Deadline-aware oversubscription
    /// still rejects — waiting cannot make a graph cheaper.
    Block,
}

/// Configuration of a [`TpdfService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads of the shared pool (all detached OS threads).
    pub threads: usize,
    /// Maximum concurrently admitted (non-retired) sessions.
    pub max_sessions: usize,
    /// Bound of each session's ingress queue (requests waiting beyond
    /// the one in flight).
    pub queue_capacity: usize,
    /// Reject-or-block behaviour at the session limit and on full
    /// ingress queues.
    pub admission: AdmissionPolicy,
    /// Fraction of the pool's processor capacity deadline-aware
    /// admission may hand out (capacity = `threads ×
    /// max_utilization`). 1.0 admits up to nominal full load.
    pub max_utilization: f64,
    /// Structured tracer shared by every session (see [`tpdf_trace`]).
    /// Injected into each admitted session's [`RuntimeConfig`] unless
    /// the session brings its own; the service layer additionally
    /// records session lifecycle events (open, reject, dispatch,
    /// close) and ingress/latency histograms on it. `None` (the
    /// default) leaves tracing fully disabled.
    pub tracer: Option<Arc<Tracer>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 4,
            max_sessions: 64,
            queue_capacity: 16,
            admission: AdmissionPolicy::default(),
            max_utilization: 1.0,
            tracer: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the pool's worker thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the concurrent-session limit (clamped to ≥ 1).
    pub fn with_max_sessions(mut self, max_sessions: usize) -> Self {
        self.max_sessions = max_sessions.max(1);
        self
    }

    /// Sets the per-session ingress queue bound (clamped to ≥ 1).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// Sets the reject-or-block admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the admissible fraction of the pool's processor capacity.
    pub fn with_max_utilization(mut self, max_utilization: f64) -> Self {
        self.max_utilization = max_utilization.max(0.0);
        self
    }

    /// Installs a shared [`Tracer`]: every admitted session records
    /// its executor-level events into it (unless the session's own
    /// [`RuntimeConfig`] already carries a tracer), and the service
    /// adds session lifecycle events and ingress/latency histograms.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }
}

/// Errors reported by the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The concurrent-session limit was hit under
    /// [`AdmissionPolicy::Reject`].
    SessionLimit {
        /// The configured limit.
        limit: usize,
    },
    /// Deadline-aware admission refused the session: its estimated
    /// processor demand does not fit the remaining capacity.
    Oversubscribed {
        /// The session's estimated demand (cost units per deadline
        /// period).
        demand: f64,
        /// Demand already admitted.
        load: f64,
        /// Total admissible capacity (threads × max utilization).
        capacity: f64,
    },
    /// The session's ingress queue is full under
    /// [`AdmissionPolicy::Reject`].
    Backpressure {
        /// The configured queue bound.
        capacity: usize,
    },
    /// No such session.
    UnknownSession(SessionId),
    /// No such request on that session (or its result was already
    /// taken).
    UnknownRequest(SessionId, RequestId),
    /// The session no longer accepts requests (closed or cancelled).
    SessionClosed(SessionId),
    /// The service is draining and accepts no new work.
    Draining,
    /// The underlying runtime failed (executor construction, or a
    /// failed run surfaced through [`TpdfService::wait`]).
    Runtime(RuntimeError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::SessionLimit { limit } => {
                write!(f, "session limit of {limit} reached")
            }
            ServiceError::Oversubscribed {
                demand,
                load,
                capacity,
            } => write!(
                f,
                "admission refused: demand {demand:.3} does not fit load {load:.3} \
                 of capacity {capacity:.3}"
            ),
            ServiceError::Backpressure { capacity } => {
                write!(f, "ingress queue full (capacity {capacity})")
            }
            ServiceError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServiceError::UnknownRequest(id, req) => {
                write!(f, "unknown request {} on {id}", req.0)
            }
            ServiceError::SessionClosed(id) => write!(f, "{id} is closed"),
            ServiceError::Draining => write!(f, "service is draining"),
            ServiceError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<RuntimeError> for ServiceError {
    fn from(value: RuntimeError) -> Self {
        ServiceError::Runtime(value)
    }
}

/// Progress of one session, as reported by [`TpdfService::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Admitted, no queued or running work.
    Idle,
    /// Work outstanding.
    Active {
        /// Requests waiting in the ingress queue.
        queued: usize,
        /// Whether a run is in flight on the pool.
        running: bool,
    },
    /// Closed or cancelled and fully drained; results remain
    /// retrievable.
    Retired,
}

/// A declarative service-level objective attached to a session at
/// admission ([`TpdfService::open_session_with_slo`]). The service
/// stores it verbatim; *evaluation* lives in the operations plane
/// (`tpdf-ops`), which folds each bound against the session's windowed
/// rates into a tri-state health verdict. Every bound is optional —
/// `SloSpec::default()` expresses no objective at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloSpec {
    /// Maximum acceptable deadline misses per completed run over the
    /// evaluation window (e.g. `0.01` = one miss per hundred runs).
    pub max_deadline_miss_rate: Option<f64>,
    /// Upper bound on the p99 run latency (queue exit to completion)
    /// in nanoseconds, checked against the window's
    /// [`tpdf_trace::Log2Histogram`] percentiles.
    pub max_run_latency_p99_ns: Option<u64>,
    /// Minimum sustained token throughput over the window, tokens per
    /// second. Compare against the analysis-side expectation derived
    /// from [`CompiledExecutor::estimated_cost_units`].
    pub min_tokens_per_sec: Option<f64>,
    /// How long the session may go without *any* executor progress
    /// (run start, iteration barrier, run finish) while work is in
    /// flight before the watchdog declares a stall.
    pub stall_budget: Option<Duration>,
    /// Ingress queue depth above which the session counts as
    /// overloaded.
    pub max_queue_depth: Option<usize>,
}

impl SloSpec {
    /// Bounds the windowed deadline-miss rate (misses per run).
    pub fn with_max_deadline_miss_rate(mut self, rate: f64) -> Self {
        self.max_deadline_miss_rate = Some(rate);
        self
    }

    /// Bounds the windowed p99 run latency in nanoseconds.
    pub fn with_max_run_latency_p99_ns(mut self, ns: u64) -> Self {
        self.max_run_latency_p99_ns = Some(ns);
        self
    }

    /// Requires a minimum windowed token throughput.
    pub fn with_min_tokens_per_sec(mut self, rate: f64) -> Self {
        self.min_tokens_per_sec = Some(rate);
        self
    }

    /// Sets the watchdog's no-progress budget.
    pub fn with_stall_budget(mut self, budget: Duration) -> Self {
        self.stall_budget = Some(budget);
        self
    }

    /// Bounds the ingress queue depth.
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth);
        self
    }

    /// Whether any bound is set.
    pub fn is_empty(&self) -> bool {
        *self == SloSpec::default()
    }
}

/// Everything an external health evaluator needs to know about one
/// session, in one lock acquisition: the same per-session metrics
/// [`TpdfService::metrics`] reports, plus the analysis-side cost facts,
/// the executor's live progress beacon and the session's [`SloSpec`].
/// Produced by [`TpdfService::inspect_sessions`].
#[derive(Debug, Clone)]
pub struct SessionInspection {
    /// The session's aggregate metrics (identical to the corresponding
    /// [`ServiceMetrics::per_session`] entry).
    pub metrics: SessionMetrics,
    /// Reference cost of one iteration in virtual work units
    /// ([`CompiledExecutor::estimated_cost_units`]).
    pub cost_units: u64,
    /// The session's shortest Clock period, if any
    /// ([`CompiledExecutor::min_clock_period`]).
    pub min_clock_period: Option<u64>,
    /// The session's trace tag (its Chrome "process" id; 0 when
    /// untraced) — lets an incident report filter the flight recorder
    /// down to this session's events.
    pub trace_tag: u32,
    /// The executor's progress beacon: runs started/finished,
    /// iteration barriers crossed, time since the last progress signal.
    pub progress: ProgressSnapshot,
    /// The SLO attached at admission, if any.
    pub slo: Option<SloSpec>,
}

/// One admitted session.
struct SessionEntry {
    compiled: CompiledExecutor,
    registry: KernelRegistry,
    /// The processor share admission charged for this session.
    demand: f64,
    /// Requests accepted but not yet dispatched, in order, each with
    /// its submission instant (for the ingress-queue wait histogram).
    queue: VecDeque<(u64, Instant)>,
    /// The request currently running on the pool. The ticket is `None`
    /// while a dispatcher is submitting the job *outside* the service
    /// lock (pool submission allocates the run's whole ring state —
    /// holding the lock across it would serialise every session's
    /// dispatch and completion on one mutex); see
    /// [`Shared::run_dispatch`] for the installation protocol.
    inflight: Option<(u64, Option<JobTicket>)>,
    /// When the in-flight request left the ingress queue — the start
    /// of the run-latency measurement.
    inflight_since: Option<Instant>,
    /// Finished results awaiting retrieval.
    results: BTreeMap<u64, Result<Metrics, ServiceError>>,
    next_request: u64,
    phase: SessionPhase,
    retired: bool,
    requests_rejected: u64,
    runs_completed: u64,
    runs_failed: u64,
    runs_cancelled: u64,
    firings: u64,
    tokens: u64,
    deadline_misses: u64,
    arena_hits: u64,
    arena_misses: u64,
    /// The SLO attached at admission, reported verbatim through
    /// [`TpdfService::inspect_sessions`] (the service itself never
    /// evaluates it).
    slo: Option<SloSpec>,
}

impl SessionEntry {
    fn idle(&self) -> bool {
        self.inflight.is_none() && self.queue.is_empty()
    }

    /// Files a finished run's result into the session's aggregates and
    /// result map. Returns the `(completed, failed)` deltas for the
    /// service-wide totals (applied by the caller once the entry borrow
    /// ends).
    fn record_result(&mut self, request: u64, result: Result<Metrics, RuntimeError>) -> (u64, u64) {
        match result {
            Ok(metrics) => {
                self.runs_completed += 1;
                self.firings += metrics.firings.iter().sum::<u64>();
                self.tokens += metrics.total_tokens;
                self.deadline_misses += metrics.deadline_misses;
                self.arena_hits += metrics.arena_hits;
                self.arena_misses += metrics.arena_misses;
                self.results.insert(request, Ok(metrics));
                (1, 0)
            }
            Err(error) => {
                self.runs_failed += 1;
                self.results.insert(request, Err(error.into()));
                (0, 1)
            }
        }
    }
}

/// One dispatch popped from a session's ingress queue under the service
/// lock, to be submitted to the pool *outside* it.
struct PendingDispatch {
    session: u64,
    request: u64,
    /// When the request joined the ingress queue.
    submitted: Instant,
    compiled: CompiledExecutor,
    registry: KernelRegistry,
}

#[derive(Default)]
struct Inner {
    sessions: BTreeMap<u64, SessionEntry>,
    next_session: u64,
    /// Σ demand of the non-retired sessions.
    demand: f64,
    draining: bool,
    sessions_admitted: u64,
    sessions_rejected: u64,
    requests_submitted: u64,
    requests_rejected: u64,
    runs_completed: u64,
    runs_failed: u64,
    checkpoints_taken: u64,
    restores: u64,
    migrations: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Notified on every state change: completions, retirements,
    /// dispatches — what blocked admissions and `drain`/`wait` sleep
    /// on.
    cond: Condvar,
    config: ServiceConfig,
    /// Source of per-session trace tags (the Chrome "process" ids):
    /// small positive integers, disjoint from the pool's self-assigned
    /// tags (which carry the top bit).
    trace_tags: AtomicU32,
}

impl Shared {
    /// The service tracer, when installed *and* enabled.
    fn trace(&self) -> Option<&Tracer> {
        self.config
            .tracer
            .as_deref()
            .filter(|tracer| tracer.is_enabled())
    }
}

/// A captured, quiescent session: everything needed to re-admit it on
/// this or another [`TpdfService`] in the same process.
///
/// Produced by [`TpdfService::checkpoint_session`] at the session's
/// *request barrier* — the point where no run is in flight and the
/// ingress queue is empty. A run never stops between iteration
/// barriers, so draining the in-flight run *is* draining to the next
/// barrier: the captured state is barrier-consistent by construction.
/// The compiled executor and kernel registry are carried by handle
/// (cheap `Arc` clones) — checkpoints move sessions between services
/// within one process. For byte-exact crash/restart persistence of
/// *runtime* state, compose with the [`tpdf_runtime::Checkpoint`]
/// codec.
pub struct SessionCheckpoint {
    compiled: CompiledExecutor,
    registry: KernelRegistry,
    next_request: u64,
    requests_rejected: u64,
    runs_completed: u64,
    runs_failed: u64,
    runs_cancelled: u64,
    firings: u64,
    tokens: u64,
    deadline_misses: u64,
    arena_hits: u64,
    arena_misses: u64,
    slo: Option<SloSpec>,
}

impl SessionCheckpoint {
    /// The processor share the session will demand at re-admission.
    pub fn demand(&self) -> f64 {
        session_demand(&self.compiled)
    }

    /// Runs the session completed before the checkpoint.
    pub fn runs_completed(&self) -> u64 {
        self.runs_completed
    }

    /// Total firings across the session's completed runs.
    pub fn firings(&self) -> u64 {
        self.firings
    }
}

impl fmt::Debug for SessionCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionCheckpoint")
            .field("runs_completed", &self.runs_completed)
            .field("firings", &self.firings)
            .field("demand", &self.demand())
            .finish_non_exhaustive()
    }
}

/// The multi-session streaming service (see the crate docs).
pub struct TpdfService {
    pool: Arc<ExecutorPool>,
    shared: Arc<Shared>,
}

impl fmt::Debug for TpdfService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TpdfService")
            .field("threads", &self.shared.config.threads)
            .field("max_sessions", &self.shared.config.max_sessions)
            .finish()
    }
}

/// The processor share a session demands of the pool: its reference
/// per-iteration cost divided by its shortest Clock deadline period.
/// Sessions without a real-time deadline demand nothing — they have no
/// timeliness contract for admission to protect.
fn session_demand(compiled: &CompiledExecutor) -> f64 {
    match (&compiled.config().clock_mode, compiled.min_clock_period()) {
        (ClockMode::RealTime { .. }, Some(period)) if period > 0 => {
            compiled.estimated_cost_units() as f64 / period as f64
        }
        _ => 0.0,
    }
}

impl TpdfService {
    /// Starts a service: spawns a detached [`ExecutorPool`] of
    /// `config.threads` workers that every session shares.
    pub fn new(config: ServiceConfig) -> Self {
        let pool = Arc::new(ExecutorPool::detached(config.threads.max(1)));
        TpdfService {
            pool,
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner::default()),
                cond: Condvar::new(),
                config,
                trace_tags: AtomicU32::new(0),
            }),
        }
    }

    /// The shared pool (for telemetry inspection — e.g.
    /// [`ExecutorPool::sampled_firing_cost_ns`],
    /// [`ExecutorPool::pinned_cores`]).
    pub fn pool(&self) -> &ExecutorPool {
        &self.pool
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Admits a new session: analyses `graph` under the session's own
    /// `config` (the reference sizing simulation doubles as the cost
    /// estimate), checks the session limit and the deadline-aware
    /// capacity, and registers the session with its kernel `registry`.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::Runtime`] when the executor cannot be built
    ///   (inconsistent graph, incomplete binding, sizing failure);
    /// * [`ServiceError::SessionLimit`] at the session cap under
    ///   [`AdmissionPolicy::Reject`] (blocks under
    ///   [`AdmissionPolicy::Block`]);
    /// * [`ServiceError::Oversubscribed`] when the session's deadline
    ///   demand does not fit the remaining capacity (always a
    ///   rejection);
    /// * [`ServiceError::Draining`] once [`TpdfService::drain`] ran.
    pub fn open_session(
        &self,
        graph: &TpdfGraph,
        config: RuntimeConfig,
        registry: KernelRegistry,
    ) -> Result<SessionId, ServiceError> {
        self.open_session_with_slo(graph, config, registry, None)
    }

    /// [`TpdfService::open_session`] with a service-level objective
    /// attached: the [`SloSpec`] travels with the session (through
    /// checkpoints and migrations included) and is reported by
    /// [`TpdfService::inspect_sessions`] for the operations plane to
    /// evaluate. `None` (or an empty spec) admits without objectives.
    ///
    /// # Errors
    ///
    /// Identical to [`TpdfService::open_session`].
    pub fn open_session_with_slo(
        &self,
        graph: &TpdfGraph,
        mut config: RuntimeConfig,
        registry: KernelRegistry,
        slo: Option<SloSpec>,
    ) -> Result<SessionId, ServiceError> {
        // Thread the service tracer through the session's runtime
        // config (unless the session brings its own), and tag the
        // session so its runs appear as one Chrome trace process.
        if config.tracer.is_none() {
            config.tracer = self.shared.config.tracer.clone();
        }
        if config.trace_tag == 0 && config.tracer.is_some() {
            config.trace_tag = self.shared.trace_tags.fetch_add(1, Relaxed) + 1;
        }
        // Compile outside the service lock: the reference sizing run
        // can be expensive, and it needs no service state. The session
        // gets its *own* firing-cost telemetry (`Executor::new`, not
        // `pool.executor`): one executor serves all the session's runs,
        // so granularity classification still carries across them —
        // without a cheap session's estimate freezing a heavy
        // neighbour's runs at one worker (the pool-wide EWMA is shared
        // across heterogeneous graphs in a multi-tenant service).
        let compiled = Executor::new(graph, config)?.compile();
        self.admit(compiled, registry, None, slo.filter(|s| !s.is_empty()))
    }

    /// The shared admission path of [`TpdfService::open_session`] and
    /// [`TpdfService::restore_session`]: session limit (reject or
    /// block), deadline-aware capacity, entry registration. A restored
    /// session carries its request numbering and aggregates forward.
    fn admit(
        &self,
        compiled: CompiledExecutor,
        registry: KernelRegistry,
        restored: Option<&SessionCheckpoint>,
        slo: Option<SloSpec>,
    ) -> Result<SessionId, ServiceError> {
        let tag = compiled.config().trace_tag;
        let demand = session_demand(&compiled);
        let capacity = self.shared.config.threads as f64 * self.shared.config.max_utilization;

        let mut inner = self.shared.inner.lock().expect("service lock");
        loop {
            if inner.draining {
                return Err(ServiceError::Draining);
            }
            let open = inner.sessions.values().filter(|s| !s.retired).count();
            if open < self.shared.config.max_sessions {
                break;
            }
            match self.shared.config.admission {
                AdmissionPolicy::Reject => {
                    inner.sessions_rejected += 1;
                    if let Some(tracer) = self.shared.trace() {
                        let limit = self.shared.config.max_sessions as u64;
                        tracer.control_event(EventKind::SessionReject, tag, 0, 0, limit);
                    }
                    return Err(ServiceError::SessionLimit {
                        limit: self.shared.config.max_sessions,
                    });
                }
                AdmissionPolicy::Block => {
                    inner = self.shared.cond.wait(inner).expect("service lock");
                }
            }
        }
        if inner.demand + demand > capacity + 1e-9 {
            inner.sessions_rejected += 1;
            if let Some(tracer) = self.shared.trace() {
                tracer.control_event(EventKind::SessionReject, tag, 1, 0, demand as u64);
            }
            return Err(ServiceError::Oversubscribed {
                demand,
                load: inner.demand,
                capacity,
            });
        }
        inner.demand += demand;
        inner.sessions_admitted += 1;
        if restored.is_some() {
            inner.restores += 1;
        }
        let id = inner.next_session;
        inner.next_session += 1;
        inner.sessions.insert(
            id,
            SessionEntry {
                compiled,
                registry,
                demand,
                queue: VecDeque::new(),
                inflight: None,
                inflight_since: None,
                results: BTreeMap::new(),
                next_request: restored.map_or(0, |c| c.next_request),
                phase: SessionPhase::Open,
                retired: false,
                requests_rejected: restored.map_or(0, |c| c.requests_rejected),
                runs_completed: restored.map_or(0, |c| c.runs_completed),
                runs_failed: restored.map_or(0, |c| c.runs_failed),
                runs_cancelled: restored.map_or(0, |c| c.runs_cancelled),
                firings: restored.map_or(0, |c| c.firings),
                tokens: restored.map_or(0, |c| c.tokens),
                deadline_misses: restored.map_or(0, |c| c.deadline_misses),
                arena_hits: restored.map_or(0, |c| c.arena_hits),
                arena_misses: restored.map_or(0, |c| c.arena_misses),
                slo,
            },
        );
        if let Some(tracer) = self.shared.trace() {
            let is_restore = restored.is_some() as u64;
            tracer.control_event(EventKind::SessionOpen, tag, id, is_restore, 0);
        }
        Ok(SessionId(id))
    }

    /// Captures the session at its *request barrier*: waits on the
    /// service condvar until the in-flight run and every queued request
    /// have drained (a run never stops between iteration barriers, so
    /// its completion is the next barrier), then snapshots the
    /// session's executor handle, kernel registry and aggregates into a
    /// [`SessionCheckpoint`]. The session stays admitted and keeps
    /// serving afterwards — use [`TpdfService::migrate_session`] to
    /// move instead of copy.
    ///
    /// Callers should pause submissions while checkpointing: every new
    /// request pushes the barrier further out and prolongs the wait.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id was never admitted;
    /// [`ServiceError::SessionClosed`] when the session has already
    /// retired.
    pub fn checkpoint_session(
        &self,
        session: SessionId,
    ) -> Result<SessionCheckpoint, ServiceError> {
        let mut inner = self.shared.inner.lock().expect("service lock");
        let mut announced = false;
        loop {
            let Some(entry) = inner.sessions.get(&session.0) else {
                return Err(if inner.was_admitted(session.0) {
                    ServiceError::SessionClosed(session)
                } else {
                    ServiceError::UnknownSession(session)
                });
            };
            if entry.retired {
                return Err(ServiceError::SessionClosed(session));
            }
            if !announced {
                announced = true;
                if let Some(tracer) = self.shared.trace() {
                    let tag = entry.compiled.config().trace_tag;
                    let runs = entry.runs_completed;
                    tracer.control_event(EventKind::CheckpointBegin, tag, session.0, 0, runs);
                }
            }
            if entry.idle() {
                break;
            }
            inner = self.shared.cond.wait(inner).expect("service lock");
        }
        let entry = inner
            .sessions
            .get(&session.0)
            .expect("session existence just checked");
        let tag = entry.compiled.config().trace_tag;
        let checkpoint = SessionCheckpoint {
            compiled: entry.compiled.clone(),
            registry: entry.registry.clone(),
            next_request: entry.next_request,
            requests_rejected: entry.requests_rejected,
            runs_completed: entry.runs_completed,
            runs_failed: entry.runs_failed,
            runs_cancelled: entry.runs_cancelled,
            firings: entry.firings,
            tokens: entry.tokens,
            deadline_misses: entry.deadline_misses,
            arena_hits: entry.arena_hits,
            arena_misses: entry.arena_misses,
            slo: entry.slo.clone(),
        };
        inner.checkpoints_taken += 1;
        if let Some(tracer) = self.shared.trace() {
            let runs = checkpoint.runs_completed;
            tracer.control_event(EventKind::CheckpointEnd, tag, session.0, 0, runs);
        }
        Ok(checkpoint)
    }

    /// Re-admits a checkpointed session under this service's full
    /// admission control (session limit, deadline-aware capacity),
    /// carrying its request numbering and aggregates forward. The
    /// restored session gets a fresh [`SessionId`] here; its graph is
    /// *not* re-analysed — the compiled executor travels by handle.
    ///
    /// # Errors
    ///
    /// The admission errors of [`TpdfService::open_session`]:
    /// [`ServiceError::SessionLimit`], [`ServiceError::Oversubscribed`]
    /// and [`ServiceError::Draining`].
    pub fn restore_session(
        &self,
        checkpoint: &SessionCheckpoint,
    ) -> Result<SessionId, ServiceError> {
        self.admit(
            checkpoint.compiled.clone(),
            checkpoint.registry.clone(),
            Some(checkpoint),
            checkpoint.slo.clone(),
        )
    }

    /// Moves a live session onto another service: drains it to its
    /// request barrier ([`TpdfService::checkpoint_session`]), re-admits
    /// the checkpoint on `to` under *its* admission control, and only
    /// then closes and retires the local original — an admission
    /// rejection by the target (session limit, oversubscription,
    /// draining) leaves the source session untouched and serving.
    ///
    /// Unread results of pre-migration requests stay retrievable on the
    /// source under the old id until taken. Kernel state shared through
    /// the registry (e.g. a sink's `OutputCapture`) travels by handle,
    /// so output streams continue seamlessly across the move.
    ///
    /// # Errors
    ///
    /// The checkpoint errors ([`ServiceError::UnknownSession`],
    /// [`ServiceError::SessionClosed`]) and the target's admission
    /// errors ([`ServiceError::SessionLimit`],
    /// [`ServiceError::Oversubscribed`], [`ServiceError::Draining`]).
    pub fn migrate_session(
        &self,
        session: SessionId,
        to: &TpdfService,
    ) -> Result<SessionId, ServiceError> {
        let checkpoint = self.checkpoint_session(session)?;
        let target = to.restore_session(&checkpoint)?;
        let mut inner = self.shared.inner.lock().expect("service lock");
        inner.migrations += 1;
        if let Some(entry) = inner.sessions.get_mut(&session.0) {
            if entry.phase == SessionPhase::Open {
                entry.phase = SessionPhase::Closed;
            }
            let tag = entry.compiled.config().trace_tag;
            if let Some(tracer) = self.shared.trace() {
                tracer.control_event(
                    EventKind::SessionMigrate,
                    tag,
                    session.0,
                    target.0,
                    checkpoint.runs_completed,
                );
            }
        }
        Inner::maybe_retire(&mut inner, session.0);
        drop(inner);
        self.shared.cond.notify_all();
        Ok(target)
    }

    /// Submits one run of the session's graph (its configured
    /// iterations, binding sequence and clock mode). The request joins
    /// the session's bounded ingress queue and is dispatched to the
    /// pool as soon as the session's previous request finishes;
    /// requests of different sessions run concurrently.
    ///
    /// # Errors
    ///
    /// * [`ServiceError::Backpressure`] on a full ingress queue under
    ///   [`AdmissionPolicy::Reject`] (blocks until space frees under
    ///   [`AdmissionPolicy::Block`]);
    /// * [`ServiceError::UnknownSession`] /
    ///   [`ServiceError::SessionClosed`] / [`ServiceError::Draining`]
    ///   for lifecycle violations.
    pub fn submit(&self, session: SessionId) -> Result<RequestId, ServiceError> {
        let mut inner = self.shared.inner.lock().expect("service lock");
        loop {
            if inner.draining {
                return Err(ServiceError::Draining);
            }
            let Some(entry) = inner.sessions.get(&session.0) else {
                // An evicted (fully retired) session no longer accepts
                // work; an id never handed out is the caller's bug.
                return Err(if inner.was_admitted(session.0) {
                    ServiceError::SessionClosed(session)
                } else {
                    ServiceError::UnknownSession(session)
                });
            };
            if entry.phase != SessionPhase::Open {
                return Err(ServiceError::SessionClosed(session));
            }
            if entry.queue.len() < self.shared.config.queue_capacity {
                break;
            }
            match self.shared.config.admission {
                AdmissionPolicy::Reject => {
                    let entry = inner
                        .sessions
                        .get_mut(&session.0)
                        .expect("session existence just checked");
                    entry.requests_rejected += 1;
                    inner.requests_rejected += 1;
                    return Err(ServiceError::Backpressure {
                        capacity: self.shared.config.queue_capacity,
                    });
                }
                AdmissionPolicy::Block => {
                    inner = self.shared.cond.wait(inner).expect("service lock");
                }
            }
        }
        let entry = inner
            .sessions
            .get_mut(&session.0)
            .expect("session existence just checked");
        let request = entry.next_request;
        entry.next_request += 1;
        entry.queue.push_back((request, Instant::now()));
        let tag = entry.compiled.config().trace_tag;
        inner.requests_submitted += 1;
        if let Some(tracer) = self.shared.trace() {
            tracer.control_event(EventKind::RequestSubmit, tag, session.0, request, 0);
        }
        let pending = inner.begin_dispatch(session.0);
        drop(inner);
        self.shared.cond.notify_all();
        if let Some(pending) = pending {
            Shared::run_dispatch(&self.shared, &self.pool, pending);
        }
        Ok(RequestId(request))
    }

    /// The session's current status.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id was never admitted.
    pub fn poll(&self, session: SessionId) -> Result<SessionStatus, ServiceError> {
        let inner = self.shared.inner.lock().expect("service lock");
        let Some(entry) = inner.sessions.get(&session.0) else {
            return if inner.was_admitted(session.0) {
                Ok(SessionStatus::Retired)
            } else {
                Err(ServiceError::UnknownSession(session))
            };
        };
        Ok(if entry.retired {
            SessionStatus::Retired
        } else if entry.idle() {
            SessionStatus::Idle
        } else {
            SessionStatus::Active {
                queued: entry.queue.len(),
                running: entry.inflight.is_some(),
            }
        })
    }

    /// Takes the result of a finished request without blocking: `None`
    /// while the request is still queued or running.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id was never admitted.
    pub fn try_take(
        &self,
        session: SessionId,
        request: RequestId,
    ) -> Result<Option<Result<Metrics, ServiceError>>, ServiceError> {
        let mut inner = self.shared.inner.lock().expect("service lock");
        let Some(entry) = inner.sessions.get_mut(&session.0) else {
            // Evicted session: every result was already taken.
            return if inner.was_admitted(session.0) {
                Ok(None)
            } else {
                Err(ServiceError::UnknownSession(session))
            };
        };
        let result = entry.results.remove(&request.0);
        Inner::evict_if_spent(&mut inner, session.0);
        Ok(result)
    }

    /// Blocks until `request` finishes and returns its [`Metrics`]
    /// (each result can be taken once).
    ///
    /// # Errors
    ///
    /// * [`ServiceError::Runtime`] when the run failed (stall, kernel
    ///   error, panic, cancellation);
    /// * [`ServiceError::UnknownRequest`] when the request is not
    ///   outstanding on the session (never submitted, or its result
    ///   was already taken).
    pub fn wait(&self, session: SessionId, request: RequestId) -> Result<Metrics, ServiceError> {
        let mut inner = self.shared.inner.lock().expect("service lock");
        loop {
            let Some(entry) = inner.sessions.get_mut(&session.0) else {
                // Evicted session: nothing is outstanding any more.
                return Err(if inner.was_admitted(session.0) {
                    ServiceError::UnknownRequest(session, request)
                } else {
                    ServiceError::UnknownSession(session)
                });
            };
            if let Some(result) = entry.results.remove(&request.0) {
                Inner::evict_if_spent(&mut inner, session.0);
                return result;
            }
            let outstanding = entry.queue.iter().any(|(r, _)| *r == request.0)
                || entry
                    .inflight
                    .as_ref()
                    .is_some_and(|(r, _)| *r == request.0);
            if !outstanding {
                return Err(ServiceError::UnknownRequest(session, request));
            }
            inner = self.shared.cond.wait(inner).expect("service lock");
        }
    }

    /// Closes the session: no new requests are accepted, the queued
    /// ones still run, and the session retires (releasing its admitted
    /// demand) once drained. Idempotent; cancelled sessions stay
    /// cancelled.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id was never admitted.
    pub fn close(&self, session: SessionId) -> Result<(), ServiceError> {
        let mut inner = self.shared.inner.lock().expect("service lock");
        let Some(entry) = inner.sessions.get_mut(&session.0) else {
            // Evicted sessions are closed by definition; close is
            // idempotent.
            return if inner.was_admitted(session.0) {
                Ok(())
            } else {
                Err(ServiceError::UnknownSession(session))
            };
        };
        if entry.phase == SessionPhase::Open {
            entry.phase = SessionPhase::Closed;
            let tag = entry.compiled.config().trace_tag;
            if let Some(tracer) = self.shared.trace() {
                tracer.control_event(EventKind::SessionClose, tag, session.0, 0, 0);
            }
        }
        Inner::maybe_retire(&mut inner, session.0);
        drop(inner);
        self.shared.cond.notify_all();
        Ok(())
    }

    /// Cancels the session: queued requests are dropped (their results
    /// resolve to [`RuntimeError::Cancelled`]), the in-flight run — if
    /// any — is halted at its next scheduling point, and the session
    /// retires. Idempotent.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id was never admitted.
    pub fn cancel(&self, session: SessionId) -> Result<(), ServiceError> {
        let ticket = {
            let mut inner = self.shared.inner.lock().expect("service lock");
            let Some(entry) = inner.sessions.get_mut(&session.0) else {
                // Evicted sessions have nothing left to cancel; cancel
                // is idempotent.
                return if inner.was_admitted(session.0) {
                    Ok(())
                } else {
                    Err(ServiceError::UnknownSession(session))
                };
            };
            let was_cancelled = entry.phase == SessionPhase::Cancelled;
            entry.phase = SessionPhase::Cancelled;
            let tag = entry.compiled.config().trace_tag;
            let dropped: Vec<u64> = entry.queue.drain(..).map(|(r, _)| r).collect();
            entry.runs_cancelled += dropped.len() as u64;
            for request in dropped {
                entry
                    .results
                    .insert(request, Err(RuntimeError::Cancelled.into()));
            }
            // The in-flight run (if any) is *not* recorded here: its
            // job is halted below and the completion callback — the
            // single recorder — files the actual outcome, which is
            // `Err(Cancelled)` for a halted run but `Ok(Metrics)` for a
            // run that won the race and completed (the engine's cancel
            // never overwrites a finished run's result, and reporting
            // it cancelled would drop produced data). A ticketless
            // placeholder stays put: the dispatcher observes the
            // cancelled phase when installing and halts its fresh job
            // itself.
            let ticket = entry
                .inflight
                .as_ref()
                .and_then(|(_, ticket)| ticket.clone());
            if !was_cancelled {
                if let Some(tracer) = self.shared.trace() {
                    tracer.control_event(EventKind::SessionClose, tag, session.0, 1, 0);
                }
            }
            Inner::maybe_retire(&mut inner, session.0);
            ticket
        };
        // Outside the service lock: cancel may finalise the job inline
        // and fire its completion callback, which re-locks the service.
        if let Some(ticket) = ticket {
            ticket.cancel();
        }
        self.shared.cond.notify_all();
        Ok(())
    }

    /// Gracefully drains the service: stops accepting sessions and
    /// requests, waits for every queued and in-flight run to finish,
    /// and reports the final aggregated [`ServiceMetrics`]. Results of
    /// finished requests remain retrievable afterwards.
    pub fn drain(&self) -> ServiceMetrics {
        let mut inner = self.shared.inner.lock().expect("service lock");
        inner.draining = true;
        // Admissions parked under `AdmissionPolicy::Block` must wake to
        // observe the drain and error out — nothing else will ever
        // notify them on an idle service.
        self.shared.cond.notify_all();
        while inner.sessions.values().any(|s| !s.idle()) {
            inner = self.shared.cond.wait(inner).expect("service lock");
        }
        Self::snapshot(&inner, &self.shared.config)
    }

    /// A point-in-time [`ServiceMetrics`] snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        let inner = self.shared.inner.lock().expect("service lock");
        Self::snapshot(&inner, &self.shared.config)
    }

    /// Everything an external health evaluator needs, per session, in
    /// one lock acquisition: metrics, analysis-side cost facts, the
    /// executor's progress beacon and the attached [`SloSpec`].
    /// Includes retired-but-unread sessions (they still appear in
    /// [`ServiceMetrics::per_session`] and their terminal health is
    /// still reportable); evicted sessions are gone.
    pub fn inspect_sessions(&self) -> Vec<SessionInspection> {
        let inner = self.shared.inner.lock().expect("service lock");
        inner
            .sessions
            .iter()
            .map(|(&id, s)| SessionInspection {
                metrics: Self::session_metrics(id, s),
                cost_units: s.compiled.estimated_cost_units(),
                min_clock_period: s.compiled.min_clock_period(),
                trace_tag: s.compiled.config().trace_tag,
                progress: s.compiled.progress(),
                slo: s.slo.clone(),
            })
            .collect()
    }

    fn session_metrics(id: u64, s: &SessionEntry) -> SessionMetrics {
        SessionMetrics {
            id: SessionId(id),
            phase: s.phase,
            retired: s.retired,
            queue_depth: s.queue.len(),
            running: s.inflight.is_some(),
            demand: s.demand,
            runs_completed: s.runs_completed,
            runs_failed: s.runs_failed,
            runs_cancelled: s.runs_cancelled,
            requests_rejected: s.requests_rejected,
            firings: s.firings,
            tokens: s.tokens,
            deadline_misses: s.deadline_misses,
            arena_hits: s.arena_hits,
            arena_misses: s.arena_misses,
        }
    }

    fn snapshot(inner: &Inner, config: &ServiceConfig) -> ServiceMetrics {
        ServiceMetrics {
            sessions_admitted: inner.sessions_admitted,
            sessions_rejected: inner.sessions_rejected,
            requests_submitted: inner.requests_submitted,
            requests_rejected: inner.requests_rejected,
            runs_completed: inner.runs_completed,
            runs_failed: inner.runs_failed,
            checkpoints_taken: inner.checkpoints_taken,
            restores: inner.restores,
            migrations: inner.migrations,
            active_sessions: inner.sessions.values().filter(|s| !s.retired).count(),
            queued_requests: inner.sessions.values().map(|s| s.queue.len()).sum(),
            demand: inner.demand,
            capacity: config.threads as f64 * config.max_utilization,
            per_session: inner
                .sessions
                .iter()
                .map(|(&id, s)| Self::session_metrics(id, s))
                .collect(),
        }
    }
}

impl Inner {
    /// Whether `session` was admitted at some point: ids are handed out
    /// monotonically, so an id below the counter that is no longer in
    /// the table belongs to a retired-and-evicted session, not to a
    /// typo.
    fn was_admitted(&self, session: u64) -> bool {
        session < self.next_session
    }

    /// Retires a drained closed/cancelled session: releases its
    /// admitted demand exactly once, then evicts the entry as soon as
    /// every result has been taken — a service living through millions
    /// of sessions must not grow its table with the dead ones.
    fn maybe_retire(inner: &mut Inner, session: u64) {
        let Some(entry) = inner.sessions.get_mut(&session) else {
            return;
        };
        if !entry.retired {
            if entry.phase == SessionPhase::Open || !entry.idle() {
                return;
            }
            entry.retired = true;
            inner.demand -= entry.demand;
            if inner.demand < 0.0 {
                inner.demand = 0.0;
            }
        }
        Inner::evict_if_spent(inner, session);
    }

    /// Drops a retired session whose results were all taken. Called
    /// after retirement and after every result retrieval.
    fn evict_if_spent(inner: &mut Inner, session: u64) {
        if inner
            .sessions
            .get(&session)
            .is_some_and(|entry| entry.retired && entry.results.is_empty())
        {
            inner.sessions.remove(&session);
        }
    }
}

impl Inner {
    /// Pops the session's next dispatchable request and marks it in
    /// flight with a *placeholder* ticket (`None`). The returned work
    /// is submitted to the pool outside the service lock by
    /// [`Shared::run_dispatch`]. Must hold the service lock.
    fn begin_dispatch(&mut self, session: u64) -> Option<PendingDispatch> {
        let entry = self.sessions.get_mut(&session)?;
        if entry.inflight.is_some() || entry.phase == SessionPhase::Cancelled {
            return None;
        }
        let (request, submitted) = entry.queue.pop_front()?;
        entry.inflight = Some((request, None));
        entry.inflight_since = Some(Instant::now());
        Some(PendingDispatch {
            session,
            request,
            submitted,
            compiled: entry.compiled.clone(),
            registry: entry.registry.clone(),
        })
    }
}

impl Shared {
    /// Submits pending dispatches to the pool, *outside* the service
    /// lock (pool submission sizes and allocates the run's entire ring
    /// state). Installation protocol: the placeholder `(request, None)`
    /// set by [`Inner::begin_dispatch`] reserves the in-flight slot; we
    /// submit, re-lock and install the ticket.
    ///
    /// Two races are handled here:
    ///
    /// * the session was cancelled (or evicted) while we submitted —
    ///   the placeholder is gone, so the fresh job is cancelled and its
    ///   result dropped (the cancellation already recorded it);
    /// * the job *outran* the installation — its completion callback
    ///   found a ticketless placeholder and left recording to us
    ///   ([`Shared::on_job_complete`]), so after installing a finished
    ///   ticket we record the completion ourselves, which may begin the
    ///   session's next dispatch: hence the loop.
    fn run_dispatch(shared: &Arc<Shared>, pool: &Arc<ExecutorPool>, mut pending: PendingDispatch) {
        loop {
            let (session, request) = (pending.session, pending.request);
            if let Some(tracer) = shared.trace() {
                let waited = pending.submitted.elapsed().as_nanos() as u64;
                tracer.histograms().queue_wait_ns.record(waited);
                tracer.control_event(
                    EventKind::SessionDispatch,
                    pending.compiled.config().trace_tag,
                    session,
                    request,
                    waited,
                );
            }
            let callback_shared = Arc::clone(shared);
            let callback_pool = Arc::clone(pool);
            let ticket = pool.submit_with(&pending.compiled, &pending.registry, move || {
                Shared::on_job_complete(&callback_shared, &callback_pool, session, request);
            });
            let mut inner = shared.inner.lock().expect("service lock");
            let placeholder_ok = inner.sessions.get(&session).is_some_and(|entry| {
                entry
                    .inflight
                    .as_ref()
                    .is_some_and(|(r, t)| *r == request && t.is_none())
            });
            if !placeholder_ok {
                // The session was evicted while we were submitting: the
                // orphan job is halted and its result dropped.
                drop(inner);
                ticket.cancel();
                shared.cond.notify_all();
                return;
            }
            let entry = inner
                .sessions
                .get_mut(&session)
                .expect("placeholder existence just checked");
            // A cancellation that raced this dispatch left the
            // placeholder for us: install, then halt the job so its
            // completion callback records the cancellation (or the
            // real result, if the run wins the race).
            let halt_handle = (entry.phase == SessionPhase::Cancelled).then(|| ticket.clone());
            let finished = ticket.is_finished();
            entry.inflight = Some((request, Some(ticket)));
            let next = if finished {
                // The job completed before the ticket was installed;
                // its callback deferred to us (see on_job_complete).
                Shared::record_completion(shared, &mut inner, session, request)
            } else {
                None
            };
            drop(inner);
            shared.cond.notify_all();
            if let Some(handle) = halt_handle {
                handle.cancel();
            }
            match next {
                Some(next) => pending = next,
                None => return,
            }
        }
    }

    /// Records the finished in-flight `request`, begins the session's
    /// next dispatch and retires the session if drained. Returns the
    /// pending dispatch to run outside the lock. No-ops (returning
    /// `None`) when the in-flight slot does not hold this request with
    /// an installed ticket — a cancellation got there first, or the
    /// ticket is still being installed. Must hold the service lock.
    fn record_completion(
        shared: &Shared,
        inner: &mut Inner,
        session: u64,
        request: u64,
    ) -> Option<PendingDispatch> {
        let entry = inner.sessions.get_mut(&session)?;
        let (inflight_request, maybe_ticket) = entry.inflight.take()?;
        if inflight_request != request {
            entry.inflight = Some((inflight_request, maybe_ticket));
            return None;
        }
        let Some(ticket) = maybe_ticket else {
            // Our ticket is still being installed by run_dispatch; put
            // the placeholder back — the installer observes the
            // finished ticket and records through this same path.
            entry.inflight = Some((inflight_request, None));
            return None;
        };
        let result = ticket.try_take().unwrap_or(Err(RuntimeError::Cancelled));
        if let Some(tracer) = shared.trace() {
            let latency = entry
                .inflight_since
                .map(|since| since.elapsed().as_nanos() as u64)
                .unwrap_or(0);
            tracer.histograms().run_latency_ns.record(latency);
            tracer.control_event(
                EventKind::RunComplete,
                entry.compiled.config().trace_tag,
                session,
                request,
                latency,
            );
        }
        entry.inflight_since = None;
        // A cancelled session's halted runs are accounted as
        // cancellations, not failures; every other outcome — including
        // an `Ok` that won the race against the cancel — is recorded
        // as the run's real result.
        let (completed, failed) = if entry.phase == SessionPhase::Cancelled
            && matches!(result, Err(RuntimeError::Cancelled))
        {
            entry.runs_cancelled += 1;
            entry
                .results
                .insert(request, Err(RuntimeError::Cancelled.into()));
            (0, 0)
        } else {
            entry.record_result(request, result)
        };
        inner.runs_completed += completed;
        inner.runs_failed += failed;
        let pending = inner.begin_dispatch(session);
        Inner::maybe_retire(inner, session);
        pending
    }

    /// Pool-side completion hook: records the finished run, dispatches
    /// the session's next request, retires drained sessions and wakes
    /// every waiter. Runs on a pool worker thread with no pool lock
    /// held.
    fn on_job_complete(shared: &Arc<Shared>, pool: &Arc<ExecutorPool>, session: u64, request: u64) {
        let pending = {
            let mut inner = shared.inner.lock().expect("service lock");
            Shared::record_completion(shared, &mut inner, session, request)
        };
        shared.cond.notify_all();
        if let Some(pending) = pending {
            Shared::run_dispatch(shared, pool, pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tpdf_core::actors::KernelKind;
    use tpdf_core::examples::figure2_graph;
    use tpdf_core::rate::RateSeq;
    use tpdf_runtime::Token;
    use tpdf_symexpr::Binding;

    fn binding(p: i64) -> Binding {
        Binding::from_pairs([("p", p)])
    }

    /// A graph whose Transaction is driven by a Clock (deadline) and
    /// whose kernels carry `work` units of execution time per firing.
    fn deadline_graph(work: u64, period: u64) -> TpdfGraph {
        TpdfGraph::builder()
            .kernel_with("src", KernelKind::Regular, work)
            .kernel_with("proc", KernelKind::Regular, work)
            .kernel_with("clock", KernelKind::Clock { period }, 0)
            .kernel_with("tran", KernelKind::Transaction { votes_required: 0 }, 1)
            .kernel("snk")
            .channel("src", "proc", RateSeq::constant(1), RateSeq::constant(1), 0)
            .channel(
                "proc",
                "tran",
                RateSeq::constant(1),
                RateSeq::constant(1),
                0,
            )
            .control_channel("clock", "tran", RateSeq::constant(1), RateSeq::constant(1))
            .channel("tran", "snk", RateSeq::constant(1), RateSeq::constant(1), 0)
            .build()
            .unwrap()
    }

    #[test]
    fn sessions_run_and_aggregate_metrics() {
        let service = TpdfService::new(ServiceConfig::default().with_threads(2));
        let graph = figure2_graph();
        let session = service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(2))
                    .with_threads(2)
                    .with_iterations(3),
                KernelRegistry::new(),
            )
            .unwrap();
        let r1 = service.submit(session).unwrap();
        let r2 = service.submit(session).unwrap();
        let m1 = service.wait(session, r1).unwrap();
        let m2 = service.wait(session, r2).unwrap();
        assert_eq!(m1.iterations, 3);
        assert_eq!(m1.firings, m2.firings);
        assert_eq!(service.poll(session).unwrap(), SessionStatus::Idle);
        let report = service.metrics();
        assert_eq!(report.runs_completed, 2);
        let per = report.session(session).unwrap();
        assert_eq!(per.runs_completed, 2);
        assert_eq!(
            per.firings,
            2 * m1.firings.iter().sum::<u64>(),
            "per-session firings aggregate over the session's runs"
        );
        assert!(per.tokens > 0);
    }

    #[test]
    fn session_limit_rejects_and_counts() {
        let service = TpdfService::new(
            ServiceConfig::default()
                .with_threads(1)
                .with_max_sessions(2),
        );
        let graph = figure2_graph();
        let config = || RuntimeConfig::new(binding(1)).with_threads(1);
        let a = service
            .open_session(&graph, config(), KernelRegistry::new())
            .unwrap();
        service
            .open_session(&graph, config(), KernelRegistry::new())
            .unwrap();
        let refused = service.open_session(&graph, config(), KernelRegistry::new());
        assert_eq!(refused, Err(ServiceError::SessionLimit { limit: 2 }));
        assert_eq!(service.metrics().sessions_rejected, 1);

        // Retiring a session frees a slot.
        service.close(a).unwrap();
        assert_eq!(service.poll(a).unwrap(), SessionStatus::Retired);
        service
            .open_session(&graph, config(), KernelRegistry::new())
            .unwrap();
    }

    #[test]
    fn deadline_demand_admission_refuses_oversubscription() {
        // Each session demands cost/period = (2·10 + 3·1)/30 ≈ 0.77 of
        // a 1-thread pool (the clock, transaction and sink each carry
        // the floor execution time of 1): the first fits, the second
        // would oversubscribe.
        let service = TpdfService::new(ServiceConfig::default().with_threads(1));
        let graph = deadline_graph(10, 30);
        let config = || {
            RuntimeConfig::new(Binding::new())
                .with_threads(1)
                .with_real_time(Duration::from_micros(50))
        };
        service
            .open_session(&graph, config(), KernelRegistry::new())
            .unwrap();
        let refused = service.open_session(&graph, config(), KernelRegistry::new());
        assert!(
            matches!(refused, Err(ServiceError::Oversubscribed { .. })),
            "second 0.7-demand session must not fit one worker: {refused:?}"
        );
        let report = service.metrics();
        assert_eq!(report.sessions_rejected, 1);
        assert!(
            (report.demand - 23.0 / 30.0).abs() < 1e-9,
            "{}",
            report.demand
        );

        // A virtual-clock session of the same graph demands nothing.
        service
            .open_session(
                &graph,
                RuntimeConfig::new(Binding::new()).with_threads(1),
                KernelRegistry::new(),
            )
            .unwrap();
    }

    #[test]
    fn ingress_backpressure_rejects_on_full_queue() {
        let service = TpdfService::new(
            ServiceConfig::default()
                .with_threads(1)
                .with_queue_capacity(1),
        );
        let graph = figure2_graph();
        // A slow kernel keeps the first request in flight while the
        // queue fills behind it.
        let mut registry = KernelRegistry::new();
        registry.register_fn("B", |ctx| {
            std::thread::sleep(Duration::from_millis(20));
            ctx.fill_outputs_cycling(&[Token::Int(1)]);
            Ok(())
        });
        let session = service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(1)).with_threads(1),
                registry,
            )
            .unwrap();
        let first = service.submit(session).unwrap();
        // One request rides in flight, one sits in the queue; the next
        // submit must hit backpressure.
        let mut rejected = false;
        let mut accepted = vec![first];
        for _ in 0..3 {
            match service.submit(session) {
                Ok(request) => accepted.push(request),
                Err(ServiceError::Backpressure { capacity }) => {
                    assert_eq!(capacity, 1);
                    rejected = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(rejected, "the bounded queue must push back");
        assert!(service.metrics().requests_rejected >= 1);
        for request in accepted {
            service.wait(session, request).unwrap();
        }
    }

    #[test]
    fn blocking_admission_waits_for_capacity() {
        let service = Arc::new(TpdfService::new(
            ServiceConfig::default()
                .with_threads(1)
                .with_max_sessions(1)
                .with_admission(AdmissionPolicy::Block),
        ));
        let graph = figure2_graph();
        let first = service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(1)).with_threads(1),
                KernelRegistry::new(),
            )
            .unwrap();
        let opener = {
            let service = Arc::clone(&service);
            let graph = graph.clone();
            std::thread::spawn(move || {
                service.open_session(
                    &graph,
                    RuntimeConfig::new(binding(1)).with_threads(1),
                    KernelRegistry::new(),
                )
            })
        };
        // Give the opener time to block, then free the slot.
        std::thread::sleep(Duration::from_millis(20));
        service.close(first).unwrap();
        let second = opener.join().unwrap().unwrap();
        assert_ne!(second, first);
    }

    #[test]
    fn drain_wakes_admissions_blocked_at_the_session_limit() {
        let service = Arc::new(TpdfService::new(
            ServiceConfig::default()
                .with_threads(1)
                .with_max_sessions(1)
                .with_admission(AdmissionPolicy::Block),
        ));
        let graph = figure2_graph();
        service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(1)).with_threads(1),
                KernelRegistry::new(),
            )
            .unwrap();
        let blocked = {
            let service = Arc::clone(&service);
            let graph = graph.clone();
            std::thread::spawn(move || {
                service.open_session(
                    &graph,
                    RuntimeConfig::new(binding(1)).with_threads(1),
                    KernelRegistry::new(),
                )
            })
        };
        // Let the opener park on the full session table, then drain:
        // nothing else will ever notify it on an idle service.
        std::thread::sleep(Duration::from_millis(20));
        service.drain();
        assert_eq!(blocked.join().unwrap(), Err(ServiceError::Draining));
    }

    #[test]
    fn cancel_drops_queue_and_halts_inflight() {
        let service = TpdfService::new(ServiceConfig::default().with_threads(1));
        let graph = figure2_graph();
        let mut registry = KernelRegistry::new();
        registry.register_fn("B", |ctx| {
            std::thread::sleep(Duration::from_millis(5));
            ctx.fill_outputs_cycling(&[Token::Int(1)]);
            Ok(())
        });
        let session = service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(2))
                    .with_threads(1)
                    .with_iterations(50),
                registry,
            )
            .unwrap();
        let running = service.submit(session).unwrap();
        let queued = service.submit(session).unwrap();
        service.cancel(session).unwrap();
        // The queued request is recorded synchronously; the in-flight
        // one by its completion callback once the halt lands. Both
        // count as cancellations while their results are still unread
        // (the session cannot be evicted before they are taken).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let cancelled = service
                .metrics()
                .session(session)
                .expect("unread results pin the session")
                .runs_cancelled;
            if cancelled == 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "both runs must record as cancelled, got {cancelled}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        for request in [running, queued] {
            assert_eq!(
                service.wait(session, request),
                Err(ServiceError::Runtime(RuntimeError::Cancelled)),
                "request {request:?}"
            );
        }
        // The session retires (immediately or as soon as the halted
        // in-flight run drains off the pool), then — all results taken
        // — is evicted, still reported `Retired` by id.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.poll(session).unwrap() != SessionStatus::Retired {
            assert!(std::time::Instant::now() < deadline, "session must retire");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(service.submit(session).is_err(), "no submits after cancel");
        let report = service.drain();
        assert_eq!(report.runs_completed, 0);
    }

    #[test]
    fn spent_retired_sessions_are_evicted_but_stay_addressable() {
        let service = TpdfService::new(ServiceConfig::default().with_threads(1));
        let graph = figure2_graph();
        let session = service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(1)).with_threads(1),
                KernelRegistry::new(),
            )
            .unwrap();
        let request = service.submit(session).unwrap();
        service.wait(session, request).unwrap();
        service.close(session).unwrap();
        // Retired with no unread results → evicted from the table…
        assert!(service.metrics().per_session.is_empty());
        // …but its id keeps answering sensibly (not UnknownSession).
        assert_eq!(service.poll(session).unwrap(), SessionStatus::Retired);
        assert_eq!(service.try_take(session, request).unwrap(), None);
        assert_eq!(
            service.submit(session),
            Err(ServiceError::SessionClosed(session))
        );
        assert_eq!(service.close(session), Ok(()));
        assert_eq!(service.cancel(session), Ok(()));
        // Totals keep counting the evicted session's work.
        let report = service.metrics();
        assert_eq!(report.runs_completed, 1);
        assert_eq!(report.sessions_admitted, 1);
        assert_eq!(report.active_sessions, 0);
    }

    #[test]
    fn drain_finishes_outstanding_work_and_blocks_new() {
        let service = TpdfService::new(ServiceConfig::default().with_threads(2));
        let graph = figure2_graph();
        let session = service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(2)).with_threads(1),
                KernelRegistry::new(),
            )
            .unwrap();
        for _ in 0..4 {
            service.submit(session).unwrap();
        }
        let report = service.drain();
        assert_eq!(report.runs_completed, 4);
        assert_eq!(report.queued_requests, 0);
        assert_eq!(service.submit(session), Err(ServiceError::Draining));
        assert!(matches!(
            service.open_session(
                &graph,
                RuntimeConfig::new(binding(1)),
                KernelRegistry::new()
            ),
            Err(ServiceError::Draining)
        ));
    }

    #[test]
    fn checkpoint_restore_and_migrate_carry_session_state() {
        let source = TpdfService::new(ServiceConfig::default().with_threads(1));
        let target = TpdfService::new(ServiceConfig::default().with_threads(1));
        let graph = figure2_graph();
        let session = source
            .open_session(
                &graph,
                RuntimeConfig::new(binding(2))
                    .with_threads(1)
                    .with_iterations(2),
                KernelRegistry::new(),
            )
            .unwrap();
        let first = source.submit(session).unwrap();
        source.wait(session, first).unwrap();

        let checkpoint = source.checkpoint_session(session).unwrap();
        assert_eq!(checkpoint.runs_completed(), 1);
        assert!(checkpoint.firings() > 0);

        // A restore on the same service is a copy under admission.
        let copy = source.restore_session(&checkpoint).unwrap();
        assert_ne!(copy, session);

        // Migration moves the original: retired here, serving there.
        let moved = source.migrate_session(session, &target).unwrap();
        assert_eq!(source.poll(session).unwrap(), SessionStatus::Retired);
        assert_eq!(
            source.submit(session),
            Err(ServiceError::SessionClosed(session))
        );
        let next = target.submit(moved).unwrap();
        let metrics = target.wait(moved, next).unwrap();
        assert_eq!(metrics.iterations, 2);
        // Request numbering continues across the move (one request ran
        // before the checkpoint).
        assert_eq!(next, RequestId(1));

        let s = source.metrics();
        assert_eq!(s.checkpoints_taken, 2, "explicit + the migration's");
        assert_eq!(s.restores, 1);
        assert_eq!(s.migrations, 1);
        let t = target.metrics();
        assert_eq!(t.restores, 1);
        assert_eq!(t.migrations, 0);
        assert_eq!(
            t.session(moved).unwrap().runs_completed,
            2,
            "aggregates carry: one run before the move, one after"
        );
    }

    #[test]
    fn migration_rejected_by_target_leaves_source_serving() {
        let source = TpdfService::new(ServiceConfig::default().with_threads(1));
        let target = TpdfService::new(
            ServiceConfig::default()
                .with_threads(1)
                .with_max_sessions(1),
        );
        let graph = figure2_graph();
        let config = || RuntimeConfig::new(binding(1)).with_threads(1);
        target
            .open_session(&graph, config(), KernelRegistry::new())
            .unwrap();
        let session = source
            .open_session(&graph, config(), KernelRegistry::new())
            .unwrap();
        let refused = source.migrate_session(session, &target);
        assert_eq!(refused, Err(ServiceError::SessionLimit { limit: 1 }));
        // The source session is untouched and keeps serving.
        let request = source.submit(session).unwrap();
        source.wait(session, request).unwrap();
        assert_eq!(source.metrics().migrations, 0);
        assert_eq!(target.metrics().restores, 0);
    }

    #[test]
    fn unknown_ids_are_reported() {
        let service = TpdfService::new(ServiceConfig::default().with_threads(1));
        let ghost = SessionId(42);
        assert_eq!(
            service.poll(ghost),
            Err(ServiceError::UnknownSession(ghost))
        );
        let graph = figure2_graph();
        let session = service
            .open_session(
                &graph,
                RuntimeConfig::new(binding(1)).with_threads(1),
                KernelRegistry::new(),
            )
            .unwrap();
        let request = service.submit(session).unwrap();
        service.wait(session, request).unwrap();
        // Taken once; a second wait reports the request unknown.
        assert_eq!(
            service.wait(session, request),
            Err(ServiceError::UnknownRequest(session, request))
        );
    }
}

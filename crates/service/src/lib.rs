//! # tpdf-service
//!
//! A multi-session streaming service layer over one shared
//! [`tpdf_runtime::ExecutorPool`]: the step from "execute one TPDF
//! graph" to "serve many concurrent context-dependent streaming
//! applications on the same hardware".
//!
//! A [`TpdfService`] hosts a *detached* worker pool (all workers are
//! OS threads owned by the pool) and multiplexes **sessions** over it:
//!
//! * [`TpdfService::open_session`] **admits** a graph instance with its
//!   own per-session [`tpdf_runtime::RuntimeConfig`] — deadline mode,
//!   placement policy, binding sequences all work unchanged per
//!   session. Admission is controlled twice: a concurrent-session
//!   limit with a reject-or-block [`AdmissionPolicy`], and
//!   **deadline-aware admission control** — a session whose
//!   reference-sim cost estimate (Σ repetition count × execution time
//!   per iteration, divided by its Clock deadline period) would
//!   oversubscribe the pool's processor capacity is refused outright.
//! * [`TpdfService::submit`] enqueues one run of the session's graph on
//!   its **bounded ingress queue**; a full queue exercises
//!   **backpressure** (reject the request, or block until space frees,
//!   per the [`AdmissionPolicy`]). Each session executes its requests
//!   in order, one in flight at a time; requests of *different*
//!   sessions run concurrently on the shared pool, each in its own
//!   isolated run state — a panicking session fails only itself.
//! * [`TpdfService::poll`] / [`TpdfService::wait`] observe progress and
//!   collect per-run [`tpdf_runtime::Metrics`];
//!   [`TpdfService::cancel`] cancels a session (in-flight run halted,
//!   queued requests dropped); [`TpdfService::close`] retires it after
//!   its queue drains; [`TpdfService::drain`] gracefully finishes all
//!   outstanding work and reports the aggregated [`ServiceMetrics`]
//!   (per-session firings, deadline misses, queue depths, rejected
//!   admissions).
//!
//! Each session owns its firing-cost telemetry (one compiled executor
//! serves all the session's runs), so the granularity classification
//! ("too fine-grained to distribute") learned by a session's early
//! runs benefits its later ones — while a cheap tenant's estimate can
//! never freeze a heavy neighbour's runs at one worker.
//!
//! ## Example
//!
//! ```
//! use tpdf_core::examples::figure2_graph;
//! use tpdf_runtime::{KernelRegistry, RuntimeConfig};
//! use tpdf_service::{ServiceConfig, TpdfService};
//! use tpdf_symexpr::Binding;
//!
//! # fn main() -> Result<(), tpdf_service::ServiceError> {
//! let service = TpdfService::new(ServiceConfig::default().with_threads(2));
//! let graph = figure2_graph();
//! let session = service.open_session(
//!     &graph,
//!     RuntimeConfig::new(Binding::from_pairs([("p", 2)])).with_threads(2),
//!     KernelRegistry::new(),
//! )?;
//! let request = service.submit(session)?;
//! let metrics = service.wait(session, request)?;
//! assert_eq!(metrics.iterations, 1);
//! let report = service.drain();
//! assert_eq!(report.runs_completed, 1);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod service;

pub use metrics::{ServiceMetrics, SessionMetrics, SessionPhase};
pub use service::{
    AdmissionPolicy, RequestId, ServiceConfig, ServiceError, SessionCheckpoint, SessionId,
    SessionInspection, SessionStatus, SloSpec, TpdfService,
};

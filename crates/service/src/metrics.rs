//! Aggregated statistics of a running (or drained) service.
//!
//! [`ServiceMetrics`] is serializable through the workspace's serde
//! stub seam: the derive markers are no-ops, and the concrete codec is
//! [`ServiceMetrics::to_snapshot`] / [`ServiceMetrics::from_snapshot`]
//! (the same line-oriented `key=value` document format as
//! `tpdf_runtime::Metrics`, with one repeated `session` line per
//! session). [`ServiceMetrics::to_prometheus`] renders the same
//! numbers in Prometheus text exposition format.

use crate::service::SessionId;
use tpdf_trace::{Exposition, SnapshotError, SnapshotReader, SnapshotWriter};

/// Lifecycle phase of a session, as reported by [`SessionMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SessionPhase {
    /// Accepting new requests.
    Open,
    /// Closed by [`crate::TpdfService::close`]: no new requests, the
    /// remaining queue drains.
    Closed,
    /// Cancelled by [`crate::TpdfService::cancel`]: the in-flight run
    /// was halted and the queue dropped.
    Cancelled,
}

/// Per-session statistics, aggregated over the session's completed
/// runs.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SessionMetrics {
    /// The session.
    pub id: SessionId,
    /// Lifecycle phase.
    pub phase: SessionPhase,
    /// Whether the session has fully retired (no queued or running
    /// work remains and its admission demand has been released).
    pub retired: bool,
    /// Requests currently waiting in the ingress queue.
    pub queue_depth: usize,
    /// Whether a run of this session is in flight on the pool.
    pub running: bool,
    /// The processor share this session's deadline demands of the pool
    /// (0 for sessions without a real-time deadline) — what admission
    /// control charged against the capacity.
    pub demand: f64,
    /// Runs that completed successfully.
    pub runs_completed: u64,
    /// Runs that failed (kernel error, stall, panic).
    pub runs_failed: u64,
    /// Runs (queued or in flight) dropped by a cancellation.
    pub runs_cancelled: u64,
    /// Requests refused by ingress backpressure
    /// ([`crate::AdmissionPolicy::Reject`] on a full queue).
    pub requests_rejected: u64,
    /// Total firings across the session's completed runs.
    pub firings: u64,
    /// Total tokens pushed across the session's completed runs.
    pub tokens: u64,
    /// Total real-time deadline misses across the session's completed
    /// runs.
    pub deadline_misses: u64,
    /// Firing slabs served from worker freelists across the session's
    /// completed runs (see `tpdf_runtime::Metrics::arena_hits`).
    pub arena_hits: u64,
    /// Firing-slab requests that fell back to the global allocator.
    pub arena_misses: u64,
}

impl SessionMetrics {
    /// Fraction of firing-slab requests served without allocating
    /// (`1.0` when the session saw no slab traffic at all — nothing
    /// allocated is as good as everything recycled).
    pub fn arena_hit_rate(&self) -> f64 {
        let total = self.arena_hits + self.arena_misses;
        if total == 0 {
            1.0
        } else {
            self.arena_hits as f64 / total as f64
        }
    }
}

/// Aggregate statistics of the whole service.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceMetrics {
    /// Sessions admitted since the service started.
    pub sessions_admitted: u64,
    /// Sessions refused by admission control (session limit under
    /// [`crate::AdmissionPolicy::Reject`], or deadline-aware
    /// oversubscription).
    pub sessions_rejected: u64,
    /// Requests accepted onto some session's ingress queue.
    pub requests_submitted: u64,
    /// Requests refused by ingress backpressure.
    pub requests_rejected: u64,
    /// Runs completed successfully, over all sessions.
    pub runs_completed: u64,
    /// Runs that failed, over all sessions.
    pub runs_failed: u64,
    /// Session checkpoints taken ([`crate::TpdfService::checkpoint_session`],
    /// including those taken on behalf of a migration).
    pub checkpoints_taken: u64,
    /// Sessions re-admitted from a checkpoint
    /// ([`crate::TpdfService::restore_session`], including migration
    /// arrivals).
    pub restores: u64,
    /// Sessions moved *away* to another service
    /// ([`crate::TpdfService::migrate_session`] on the source side).
    pub migrations: u64,
    /// Sessions currently not retired.
    pub active_sessions: usize,
    /// Requests currently waiting across all ingress queues.
    pub queued_requests: usize,
    /// Σ demand of the admitted, non-retired deadline sessions.
    pub demand: f64,
    /// The pool's processor capacity admission compares against
    /// (worker threads × configured max utilization).
    pub capacity: f64,
    /// Per-session breakdowns, in session-id order. Sessions that
    /// retired **and** had every result taken are evicted from the
    /// table (a long-lived service must not accumulate dead sessions)
    /// and no longer appear here; the service-wide totals above keep
    /// counting them.
    pub per_session: Vec<SessionMetrics>,
}

impl ServiceMetrics {
    /// The metrics of one session, if it exists.
    pub fn session(&self, id: SessionId) -> Option<&SessionMetrics> {
        self.per_session.iter().find(|s| s.id == id)
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} active sessions ({} admitted, {} rejected), {} runs ok / {} failed, \
             {} queued requests, load {:.2}/{:.2}",
            self.active_sessions,
            self.sessions_admitted,
            self.sessions_rejected,
            self.runs_completed,
            self.runs_failed,
            self.queued_requests,
            self.demand,
            self.capacity,
        )
    }

    /// Writes every field into `writer`: scalar `key=value` lines plus
    /// one repeated `session` line per session (comma-separated fields
    /// in declaration order, demand as an exact `f64:<hex>` bit
    /// pattern).
    pub fn write_snapshot(&self, writer: &mut SnapshotWriter) {
        writer.field("sessions_admitted", self.sessions_admitted);
        writer.field("sessions_rejected", self.sessions_rejected);
        writer.field("requests_submitted", self.requests_submitted);
        writer.field("requests_rejected", self.requests_rejected);
        writer.field("runs_completed", self.runs_completed);
        writer.field("runs_failed", self.runs_failed);
        writer.field("checkpoints_taken", self.checkpoints_taken);
        writer.field("restores", self.restores);
        writer.field("migrations", self.migrations);
        writer.field("active_sessions", self.active_sessions);
        writer.field("queued_requests", self.queued_requests);
        writer.field_f64("demand", self.demand);
        writer.field_f64("capacity", self.capacity);
        for session in &self.per_session {
            let phase = match session.phase {
                SessionPhase::Open => "open",
                SessionPhase::Closed => "closed",
                SessionPhase::Cancelled => "cancelled",
            };
            writer.field(
                "session",
                format_args!(
                    "{},{},{},{},{},f64:{:016x},{},{},{},{},{},{},{},{},{}",
                    session.id.0,
                    phase,
                    session.retired as u8,
                    session.queue_depth,
                    session.running as u8,
                    session.demand.to_bits(),
                    session.runs_completed,
                    session.runs_failed,
                    session.runs_cancelled,
                    session.requests_rejected,
                    session.firings,
                    session.tokens,
                    session.deadline_misses,
                    session.arena_hits,
                    session.arena_misses,
                ),
            );
        }
    }

    /// Reads a snapshot written by [`ServiceMetrics::write_snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when a required field is absent or fails to
    /// parse.
    pub fn read_snapshot(reader: &SnapshotReader) -> Result<ServiceMetrics, SnapshotError> {
        let mut per_session = Vec::new();
        for line in reader.values("session") {
            let malformed = || SnapshotError::Malformed(format!("session={line}"));
            let parts: Vec<&str> = line.split(',').collect();
            let [id, phase, retired, queue_depth, running, demand, runs_completed, runs_failed, runs_cancelled, requests_rejected, firings, tokens, deadline_misses, arena_hits, arena_misses] =
                parts[..]
            else {
                return Err(malformed());
            };
            let phase = match phase {
                "open" => SessionPhase::Open,
                "closed" => SessionPhase::Closed,
                "cancelled" => SessionPhase::Cancelled,
                _ => return Err(malformed()),
            };
            let flag = |text: &str| match text {
                "0" => Ok(false),
                "1" => Ok(true),
                _ => Err(malformed()),
            };
            let int = |text: &str| text.parse::<u64>().map_err(|_| malformed());
            let demand = demand
                .strip_prefix("f64:")
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .map(f64::from_bits)
                .ok_or_else(malformed)?;
            per_session.push(SessionMetrics {
                id: SessionId(int(id)?),
                phase,
                retired: flag(retired)?,
                queue_depth: int(queue_depth)? as usize,
                running: flag(running)?,
                demand,
                runs_completed: int(runs_completed)?,
                runs_failed: int(runs_failed)?,
                runs_cancelled: int(runs_cancelled)?,
                requests_rejected: int(requests_rejected)?,
                firings: int(firings)?,
                tokens: int(tokens)?,
                deadline_misses: int(deadline_misses)?,
                arena_hits: int(arena_hits)?,
                arena_misses: int(arena_misses)?,
            });
        }
        Ok(ServiceMetrics {
            sessions_admitted: reader.u64("sessions_admitted")?,
            sessions_rejected: reader.u64("sessions_rejected")?,
            requests_submitted: reader.u64("requests_submitted")?,
            requests_rejected: reader.u64("requests_rejected")?,
            runs_completed: reader.u64("runs_completed")?,
            runs_failed: reader.u64("runs_failed")?,
            checkpoints_taken: reader.u64("checkpoints_taken")?,
            restores: reader.u64("restores")?,
            migrations: reader.u64("migrations")?,
            active_sessions: reader.get("active_sessions")?,
            queued_requests: reader.get("queued_requests")?,
            demand: reader.f64("demand")?,
            capacity: reader.f64("capacity")?,
            per_session,
        })
    }

    /// The snapshot as one text document.
    pub fn to_snapshot(&self) -> String {
        let mut writer = SnapshotWriter::new();
        self.write_snapshot(&mut writer);
        writer.finish()
    }

    /// Parses a document produced by [`ServiceMetrics::to_snapshot`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] on a missing or malformed field.
    pub fn from_snapshot(text: &str) -> Result<ServiceMetrics, SnapshotError> {
        ServiceMetrics::read_snapshot(&SnapshotReader::parse(text)?)
    }

    /// Renders the service aggregates in Prometheus text exposition
    /// format (metrics prefixed `tpdf_service_`, per-session counters
    /// labelled by session id).
    pub fn to_prometheus(&self) -> String {
        let mut expo = Exposition::new();
        expo.counter(
            "tpdf_service_sessions_admitted_total",
            "Sessions admitted since the service started",
            self.sessions_admitted,
        );
        expo.counter(
            "tpdf_service_sessions_rejected_total",
            "Sessions refused by admission control",
            self.sessions_rejected,
        );
        expo.counter(
            "tpdf_service_requests_submitted_total",
            "Requests accepted onto ingress queues",
            self.requests_submitted,
        );
        expo.counter(
            "tpdf_service_requests_rejected_total",
            "Requests refused by ingress backpressure",
            self.requests_rejected,
        );
        expo.counter(
            "tpdf_service_runs_completed_total",
            "Runs completed successfully over all sessions",
            self.runs_completed,
        );
        expo.counter(
            "tpdf_service_runs_failed_total",
            "Runs that failed over all sessions",
            self.runs_failed,
        );
        expo.counter(
            "tpdf_service_checkpoints_taken_total",
            "Session checkpoints taken at request barriers",
            self.checkpoints_taken,
        );
        expo.counter(
            "tpdf_service_session_restores_total",
            "Sessions re-admitted from checkpoints",
            self.restores,
        );
        expo.counter(
            "tpdf_service_session_migrations_total",
            "Sessions migrated away to another service",
            self.migrations,
        );
        expo.gauge(
            "tpdf_service_active_sessions",
            "Sessions currently not retired",
            self.active_sessions as f64,
        );
        expo.gauge(
            "tpdf_service_queued_requests",
            "Requests waiting across all ingress queues",
            self.queued_requests as f64,
        );
        expo.gauge(
            "tpdf_service_demand",
            "Admitted deadline demand in processor shares",
            self.demand,
        );
        expo.gauge(
            "tpdf_service_capacity",
            "Admissible processor capacity",
            self.capacity,
        );
        // One loop per family, not one family-interleaving loop per
        // session: the text format requires all samples of a family to
        // be consecutive under a single header pair ([`Exposition`]
        // panics on violations, and [`tpdf_trace::expo::lint`] checks
        // rendered documents).
        for session in &self.per_session {
            expo.counter_with(
                "tpdf_service_session_runs_completed_total",
                "Runs completed per session",
                ("session", &session.id.0.to_string()),
                session.runs_completed,
            );
        }
        for session in &self.per_session {
            expo.counter_with(
                "tpdf_service_session_firings_total",
                "Firings per session over its completed runs",
                ("session", &session.id.0.to_string()),
                session.firings,
            );
        }
        for session in &self.per_session {
            expo.counter_with(
                "tpdf_service_session_deadline_misses_total",
                "Deadline misses per session",
                ("session", &session.id.0.to_string()),
                session.deadline_misses,
            );
        }
        for session in &self.per_session {
            expo.gauge_with(
                "tpdf_service_session_arena_hit_rate",
                "Fraction of firing-slab requests served without allocating",
                ("session", &session.id.0.to_string()),
                session.arena_hit_rate(),
            );
        }
        expo.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceMetrics {
        ServiceMetrics {
            sessions_admitted: 3,
            sessions_rejected: 1,
            requests_submitted: 9,
            requests_rejected: 2,
            runs_completed: 7,
            runs_failed: 1,
            checkpoints_taken: 2,
            restores: 1,
            migrations: 1,
            active_sessions: 2,
            queued_requests: 1,
            demand: 0.75,
            capacity: 4.0,
            per_session: vec![
                SessionMetrics {
                    id: SessionId(0),
                    phase: SessionPhase::Open,
                    retired: false,
                    queue_depth: 1,
                    running: true,
                    demand: 0.75,
                    runs_completed: 4,
                    runs_failed: 0,
                    runs_cancelled: 0,
                    requests_rejected: 2,
                    firings: 320,
                    tokens: 1280,
                    deadline_misses: 1,
                    arena_hits: 96,
                    arena_misses: 4,
                },
                SessionMetrics {
                    id: SessionId(2),
                    phase: SessionPhase::Cancelled,
                    retired: true,
                    queue_depth: 0,
                    running: false,
                    demand: 0.0,
                    runs_completed: 3,
                    runs_failed: 1,
                    runs_cancelled: 2,
                    requests_rejected: 0,
                    firings: 96,
                    tokens: 384,
                    deadline_misses: 0,
                    arena_hits: 0,
                    arena_misses: 0,
                },
            ],
        }
    }

    #[test]
    fn service_metrics_round_trip_exactly() {
        let metrics = sample();
        let back = ServiceMetrics::from_snapshot(&metrics.to_snapshot()).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn empty_session_table_round_trips() {
        let mut metrics = sample();
        metrics.per_session.clear();
        let back = ServiceMetrics::from_snapshot(&metrics.to_snapshot()).unwrap();
        assert_eq!(back, metrics);
    }

    #[test]
    fn malformed_session_lines_are_rejected() {
        let mut text = sample().to_snapshot();
        text = text.replace(",open,", ",paused,");
        assert!(matches!(
            ServiceMetrics::from_snapshot(&text),
            Err(SnapshotError::Malformed(what)) if what.contains("session=")
        ));
    }

    #[test]
    fn prometheus_rendering_labels_sessions() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE tpdf_service_sessions_admitted_total counter"));
        assert!(text.contains("tpdf_service_sessions_admitted_total 3"));
        assert!(text.contains("tpdf_service_checkpoints_taken_total 2"));
        assert!(text.contains("tpdf_service_session_migrations_total 1"));
        assert!(text.contains("tpdf_service_session_firings_total{session=\"2\"} 96"));
        assert!(text.contains("tpdf_service_session_arena_hit_rate{session=\"0\"} 0.96"));
    }

    #[test]
    fn prometheus_rendering_groups_families_and_lints() {
        let text = sample().to_prometheus();
        // With ≥ 2 sessions, each per-session family must still appear
        // exactly once — this is the conformance regression a
        // per-session emitting loop reintroduces.
        assert_eq!(
            text.matches("# TYPE tpdf_service_session_runs_completed_total")
                .count(),
            1
        );
        tpdf_trace::lint_prometheus(&text).unwrap_or_else(|e| panic!("lint: {e}"));
    }
}

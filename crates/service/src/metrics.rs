//! Aggregated statistics of a running (or drained) service.

use crate::service::SessionId;

/// Lifecycle phase of a session, as reported by [`SessionMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Accepting new requests.
    Open,
    /// Closed by [`crate::TpdfService::close`]: no new requests, the
    /// remaining queue drains.
    Closed,
    /// Cancelled by [`crate::TpdfService::cancel`]: the in-flight run
    /// was halted and the queue dropped.
    Cancelled,
}

/// Per-session statistics, aggregated over the session's completed
/// runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMetrics {
    /// The session.
    pub id: SessionId,
    /// Lifecycle phase.
    pub phase: SessionPhase,
    /// Whether the session has fully retired (no queued or running
    /// work remains and its admission demand has been released).
    pub retired: bool,
    /// Requests currently waiting in the ingress queue.
    pub queue_depth: usize,
    /// Whether a run of this session is in flight on the pool.
    pub running: bool,
    /// The processor share this session's deadline demands of the pool
    /// (0 for sessions without a real-time deadline) — what admission
    /// control charged against the capacity.
    pub demand: f64,
    /// Runs that completed successfully.
    pub runs_completed: u64,
    /// Runs that failed (kernel error, stall, panic).
    pub runs_failed: u64,
    /// Runs (queued or in flight) dropped by a cancellation.
    pub runs_cancelled: u64,
    /// Requests refused by ingress backpressure
    /// ([`crate::AdmissionPolicy::Reject`] on a full queue).
    pub requests_rejected: u64,
    /// Total firings across the session's completed runs.
    pub firings: u64,
    /// Total tokens pushed across the session's completed runs.
    pub tokens: u64,
    /// Total real-time deadline misses across the session's completed
    /// runs.
    pub deadline_misses: u64,
}

/// Aggregate statistics of the whole service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Sessions admitted since the service started.
    pub sessions_admitted: u64,
    /// Sessions refused by admission control (session limit under
    /// [`crate::AdmissionPolicy::Reject`], or deadline-aware
    /// oversubscription).
    pub sessions_rejected: u64,
    /// Requests accepted onto some session's ingress queue.
    pub requests_submitted: u64,
    /// Requests refused by ingress backpressure.
    pub requests_rejected: u64,
    /// Runs completed successfully, over all sessions.
    pub runs_completed: u64,
    /// Runs that failed, over all sessions.
    pub runs_failed: u64,
    /// Sessions currently not retired.
    pub active_sessions: usize,
    /// Requests currently waiting across all ingress queues.
    pub queued_requests: usize,
    /// Σ demand of the admitted, non-retired deadline sessions.
    pub demand: f64,
    /// The pool's processor capacity admission compares against
    /// (worker threads × configured max utilization).
    pub capacity: f64,
    /// Per-session breakdowns, in session-id order. Sessions that
    /// retired **and** had every result taken are evicted from the
    /// table (a long-lived service must not accumulate dead sessions)
    /// and no longer appear here; the service-wide totals above keep
    /// counting them.
    pub per_session: Vec<SessionMetrics>,
}

impl ServiceMetrics {
    /// The metrics of one session, if it exists.
    pub fn session(&self, id: SessionId) -> Option<&SessionMetrics> {
        self.per_session.iter().find(|s| s.id == id)
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} active sessions ({} admitted, {} rejected), {} runs ok / {} failed, \
             {} queued requests, load {:.2}/{:.2}",
            self.active_sessions,
            self.sessions_admitted,
            self.sessions_rejected,
            self.runs_completed,
            self.runs_failed,
            self.queued_requests,
            self.demand,
            self.capacity,
        )
    }
}
